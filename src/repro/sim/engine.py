"""A minimal discrete-event simulation engine.

The paper's scale results (1.8 M tasks/s across 100 nodes, GB/s NIC
transfers, thousands of cores) cannot be executed on one machine, so the
scale experiments run on a simulated cluster under this engine.  It is a
small process-based event simulator in the style of SimPy:

* :class:`SimEvent` — a one-shot event that processes can wait on;
* :class:`Engine.process` — drives a generator; ``yield event`` suspends
  the process until the event triggers, ``yield engine.timeout(d)``
  sleeps for ``d`` simulated seconds;
* :class:`SimResource` — a counted resource with FIFO queueing (cores,
  NIC slots, …).

Simulated time never touches the wall clock, so every simulation is
deterministic given its seed.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple


class SimEvent:
    """A one-shot event; processes yielding it resume when it succeeds."""

    __slots__ = ("engine", "callbacks", "triggered", "value")

    def __init__(self, engine: "Engine"):
        self.engine = engine
        self.callbacks: List[Callable[["SimEvent"], None]] = []
        self.triggered = False
        self.value: Any = None

    def succeed(self, value: Any = None) -> "SimEvent":
        if self.triggered:
            raise RuntimeError("event already triggered")
        self.triggered = True
        self.value = value
        # Deliver at the current instant, via the queue, to preserve a
        # deterministic global event order.
        self.engine._schedule(0.0, self._deliver)
        return self

    def _deliver(self) -> None:
        callbacks, self.callbacks = self.callbacks, []
        for callback in callbacks:
            callback(self)

    def add_callback(self, callback: Callable[["SimEvent"], None]) -> None:
        if self.triggered:
            self.engine._schedule(0.0, lambda: callback(self))
        else:
            self.callbacks.append(callback)


class Process(SimEvent):
    """A running simulation process; also an event that fires on return."""

    __slots__ = ("_generator",)

    def __init__(self, engine: "Engine", generator: Generator):
        super().__init__(engine)
        self._generator = generator
        engine._schedule(0.0, lambda: self._step(None))

    def _step(self, send_value: Any) -> None:
        try:
            target = self._generator.send(send_value)
        except StopIteration as stop:
            if not self.triggered:
                self.succeed(getattr(stop, "value", None))
            return
        if not isinstance(target, SimEvent):
            raise TypeError(
                f"process yielded {type(target).__name__}; expected SimEvent"
            )
        target.add_callback(lambda event: self._step(event.value))


class Engine:
    """The simulation clock and event queue."""

    def __init__(self):
        self.now = 0.0
        self._queue: List = []
        self._sequence = itertools.count()
        self.events_processed = 0

    # -- scheduling ------------------------------------------------------------

    def _schedule(self, delay: float, callback: Callable[[], None]) -> None:
        if delay < 0:
            raise ValueError("cannot schedule into the past")
        heapq.heappush(self._queue, (self.now + delay, next(self._sequence), callback))

    def timeout(self, delay: float, value: Any = None) -> SimEvent:
        """An event that fires ``delay`` simulated seconds from now."""
        event = SimEvent(self)

        def fire() -> None:
            event.triggered = True
            event.value = value
            event._deliver()

        self._schedule(delay, fire)
        return event

    def event(self) -> SimEvent:
        return SimEvent(self)

    def process(self, generator: Generator) -> Process:
        """Start a process from a generator."""
        return Process(self, generator)

    def all_of(self, events: Iterable[SimEvent]) -> SimEvent:
        """An event that fires when every given event has fired."""
        events = list(events)
        done = self.event()
        if not events:
            return self.timeout(0.0)
        remaining = {"count": len(events)}

        def on_fire(_event: SimEvent) -> None:
            remaining["count"] -= 1
            if remaining["count"] == 0:
                done.succeed([e.value for e in events])

        for event in events:
            event.add_callback(on_fire)
        return done

    def any_of(self, events: Iterable[SimEvent]) -> SimEvent:
        """An event that fires when the first of the given events fires."""
        done = self.event()

        def on_fire(event: SimEvent) -> None:
            if not done.triggered:
                done.succeed(event.value)

        for event in events:
            event.add_callback(on_fire)
        return done

    # -- running -----------------------------------------------------------------

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Process events until the queue drains, ``until`` is reached, or
        ``max_events`` have fired.  Returns the simulated time."""
        processed = 0
        while self._queue:
            event_time, _seq, callback = self._queue[0]
            if until is not None and event_time > until:
                self.now = until
                return self.now
            heapq.heappop(self._queue)
            self.now = event_time
            callback()
            self.events_processed += 1
            processed += 1
            if max_events is not None and processed >= max_events:
                break
        return self.now


class SimResource:
    """A counted resource (e.g. CPU cores) with FIFO acquisition.

    ``acquire_many`` grants a block of units **atomically** — a process
    asking for 4 cores either gets all 4 or holds none while it waits.
    Grants are strictly FIFO (no skipping past a wide waiter), which
    trades head-of-line blocking for freedom from the incremental-
    acquisition deadlock where several wide tasks each hold a partial
    allocation forever.
    """

    def __init__(self, engine: Engine, capacity: int):
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self.engine = engine
        self.capacity = capacity
        self.in_use = 0
        self._waiters: List[Tuple[SimEvent, int]] = []

    def acquire(self) -> SimEvent:
        """An event that fires when one unit is granted to the caller."""
        return self.acquire_many(1)

    def acquire_many(self, count: int) -> SimEvent:
        """An event that fires when ``count`` units are granted at once."""
        if count > self.capacity:
            raise ValueError(
                f"requested {count} units of a capacity-{self.capacity} resource"
            )
        event = self.engine.event()
        if not self._waiters and self.in_use + count <= self.capacity:
            self.in_use += count
            event.succeed()
        else:
            self._waiters.append((event, count))
        return event

    def release(self) -> None:
        self.release_many(1)

    def release_many(self, count: int) -> None:
        if self.in_use < count:
            raise RuntimeError("release without acquire")
        self.in_use -= count
        while self._waiters:
            event, needed = self._waiters[0]
            if self.in_use + needed > self.capacity:
                break
            self._waiters.pop(0)
            self.in_use += needed
            event.succeed()

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def utilization(self) -> float:
        return self.in_use / self.capacity if self.capacity else 0.0
