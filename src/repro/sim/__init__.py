"""Discrete-event cluster simulator.

The paper's evaluation runs on clusters (up to 100 m4.16xlarge nodes, 8192
cores, V100 GPUs, 25 Gbps NICs) that a laptop cannot provide.  Per the
reproduction's substitution rule, the *scale* experiments run on this
simulator: the same scheduling policies as :mod:`repro.core` (bottom-up
spillover, locality-aware lowest-estimated-wait placement, lineage
reconstruction) executing against parameterized cost models in simulated
time.  The cost models (scheduler overheads, NIC/stream bandwidths, memcpy
rates, GCS latencies) are calibrated from the paper's own microbenchmarks
so that relative comparisons — who wins, where crossovers fall — are
preserved.

* :mod:`repro.sim.engine` — event loop, processes, resources.
* :mod:`repro.sim.network` — latency/bandwidth transfer model with
  multi-stream striping.
* :mod:`repro.sim.cluster` — nodes, stores, bottom-up scheduler, lineage
  reconstruction, failure injection.
* :mod:`repro.sim.actors` — simulated actors with checkpoint/replay.
* :mod:`repro.sim.collectives` — ring allreduce on the simulated cluster.
* :mod:`repro.sim.workloads` — workload generators for the benchmarks.
* :mod:`repro.sim.metrics` — timelines and latency statistics.
"""

from repro.sim.engine import Engine, SimEvent, SimResource
from repro.sim.network import Network, NetworkConfig
from repro.sim.cluster import SimCluster, SimConfig, SimTask
from repro.sim.metrics import LatencyStats, ThroughputTimeline

__all__ = [
    "Engine",
    "SimEvent",
    "SimResource",
    "Network",
    "NetworkConfig",
    "SimCluster",
    "SimConfig",
    "SimTask",
    "LatencyStats",
    "ThroughputTimeline",
]
