"""Failure-injection schedules for simulation experiments.

The Figure 10/11 experiments are defined by *when* components die and
join; this module expresses those schedules declaratively so benchmarks
read like the paper's experiment descriptions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.sim.cluster import SimCluster


@dataclass
class FailurePlan:
    """Kill and add events to apply to a cluster at simulated times."""

    kills: List[Tuple[float, int]] = field(default_factory=list)  # (time, node)
    additions: List[float] = field(default_factory=list)  # times

    def kill(self, at: float, node_index: int) -> "FailurePlan":
        self.kills.append((at, node_index))
        return self

    def add_node(self, at: float) -> "FailurePlan":
        self.additions.append(at)
        return self

    def apply(self, cluster: SimCluster) -> None:
        """Arm every event on the cluster's engine."""
        for at, node_index in self.kills:
            cluster.engine._schedule(
                at, lambda idx=node_index: cluster.kill_node(idx)
            )
        for at in self.additions:
            cluster.engine._schedule(at, cluster.add_node)

    @property
    def total_kills(self) -> int:
        return len(self.kills)


def remove_and_restore(
    kill_times: List[float],
    restore_time: float,
    first_victim: int = 1,
) -> FailurePlan:
    """The Figure 11a schedule: remove one node at each kill time, then
    add the same number back at ``restore_time``."""
    plan = FailurePlan()
    for offset, at in enumerate(kill_times):
        plan.kill(at, first_victim + offset)
    for _ in kill_times:
        plan.add_node(restore_time)
    return plan
