"""Mechanistic ring allreduce on the simulated cluster.

:mod:`repro.sim.collectives` prices one allreduce with a closed-form cost
model.  This module instead *runs* the ring through the simulated
cluster's actual machinery — 2(n−1) rounds of per-node tasks whose chunk
outputs are the next round's inputs, scheduled by the same bottom-up
policies, transferred over the same NIC model — so the model's
predictions can be cross-checked against the mechanism (and so scheduler
pathologies like Fig 12b's latency injection emerge rather than being
priced in).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.sim.cluster import SimCluster, SimConfig, SimTask
from repro.sim.network import NetworkConfig


@dataclass(frozen=True)
class SimAllreduceResult:
    completion_seconds: float
    tasks_submitted: int
    transfers: int


def simulate_ring_allreduce(
    num_nodes: int = 16,
    object_size: int = 100_000_000,
    streams: int = 8,
    extra_scheduler_delay: float = 0.0,
    compute_per_chunk: float = 0.0,
) -> SimAllreduceResult:
    """Execute one ring allreduce mechanistically; returns its makespan.

    Every round submits one task per node; task ``(r, i)`` consumes the
    chunk object produced on node ``i-1`` in round ``r-1`` (which the
    fetch path must transfer over the simulated NIC) and produces node
    ``i``'s chunk for round ``r+1``.
    """
    if num_nodes < 2:
        return SimAllreduceResult(0.0, 0, 0)
    chunk = object_size // num_nodes
    if compute_per_chunk == 0.0:
        # Default reduce cost: two shared-memory memcpys of the chunk,
        # matching the cost model's store term.
        compute_per_chunk = 2 * chunk / 10e9
    config = SimConfig(
        num_nodes=num_nodes,
        cpus_per_node=4,
        # Every task must run on its ring position's node: force global
        # placement with locality awareness so chunks attract their tasks.
        spillback_threshold=0,
        locality_aware=True,
        extra_scheduler_delay=extra_scheduler_delay,
        network=NetworkConfig(),
        transfer_streams=streams,
    )
    cluster = SimCluster(config)

    # Seed round 0: every node holds its own initial chunk.
    for i in range(num_nodes):
        cluster.put_object(f"chunk-r0-n{i}", chunk, i)

    rounds = 2 * (num_nodes - 1)
    stats = {"submitted": 0}

    def driver():
        # The paper's implementation (and ours in repro.rl.allreduce)
        # coordinates rounds from the driver: round r+1 is submitted when
        # round r's futures resolve — which puts per-round scheduling
        # latency on the critical path (the Fig 12b effect).
        for r in range(1, rounds + 1):
            events = []
            for i in range(num_nodes):
                neighbour = (i - 1) % num_nodes
                task = SimTask(
                    name=f"reduce-r{r}-n{i}",
                    duration=compute_per_chunk,
                    deps=(
                        f"chunk-r{r - 1}-n{neighbour}",
                        f"chunk-r{r - 1}-n{i}",
                    ),
                    outputs=((f"chunk-r{r}-n{i}", chunk),),
                )
                events.append(cluster.submit(task, origin=i))
                stats["submitted"] += 1
            yield cluster.engine.all_of(events)

    done = cluster.engine.process(driver())
    cluster.engine.run()
    assert done.triggered, "allreduce did not complete"
    return SimAllreduceResult(
        completion_seconds=cluster.engine.now,
        tasks_submitted=stats["submitted"],
        transfers=cluster.network.transfers,
    )


def scheduler_delay_sweep(
    delays: List[float],
    num_nodes: int = 16,
    object_size: int = 100_000_000,
) -> dict:
    """Fig 12b mechanistically: completion time per injected delay."""
    return {
        delay: simulate_ring_allreduce(
            num_nodes=num_nodes,
            object_size=object_size,
            extra_scheduler_delay=delay,
        ).completion_seconds
        for delay in delays
    }
