"""Simulated actors with checkpoint-based reconstruction (Figure 11b).

Each actor is pinned to a node and executes a continuous stream of methods
serially (its own stateful-edge chain).  Every ``checkpoint_interval``
methods it writes a checkpoint (an extra task).  When a node dies, its
actors are redistributed across the survivors and each replays the methods
executed since its last checkpoint before accepting new work — exactly the
recovery behaviour the paper measures: ~500 re-executed methods with
checkpointing versus ~10 k without.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.sim.engine import Engine, SimResource
from repro.sim.metrics import ThroughputTimeline


@dataclass
class ActorSimConfig:
    num_nodes: int = 10
    cores_per_node: int = 16
    num_actors: int = 2000
    method_duration: float = 0.25
    checkpoint_interval: Optional[int] = None  # methods between checkpoints
    checkpoint_duration: float = 0.05
    timeline_bucket: float = 5.0


class _SimActorNode:
    def __init__(self, engine: Engine, index: int, cores: int):
        self.index = index
        self.alive = True
        self.cores = SimResource(engine, cores)


class _SimActor:
    def __init__(self, actor_id: int, node: _SimActorNode):
        self.actor_id = actor_id
        self.node = node
        self.executed = 0
        self.last_checkpoint = 0
        self.replayed = 0


class ActorFailureSimulation:
    """Drives a pool of simulated actors through a node-failure event."""

    def __init__(self, config: ActorSimConfig, engine: Optional[Engine] = None):
        self.config = config
        self.engine = engine or Engine()
        self.nodes = [
            _SimActorNode(self.engine, i, config.cores_per_node)
            for i in range(config.num_nodes)
        ]
        self.actors = [
            _SimActor(i, self.nodes[i % config.num_nodes])
            for i in range(config.num_actors)
        ]
        self.timeline = ThroughputTimeline(config.timeline_bucket)
        self.total_replayed = 0
        self.total_checkpoints = 0
        self._rr = 0

    # -- failure handling -------------------------------------------------------

    def kill_nodes(self, indices: List[int]) -> int:
        """Kill nodes; reassign their actors.  Returns actors displaced."""
        for index in indices:
            self.nodes[index].alive = False
        survivors = [n for n in self.nodes if n.alive]
        if not survivors:
            raise RuntimeError("no surviving nodes")
        displaced = 0
        for actor in self.actors:
            if not actor.node.alive:
                actor.node = survivors[self._rr % len(survivors)]
                self._rr += 1
                # Replay everything since the last checkpoint.
                actor.replayed = actor.executed - actor.last_checkpoint
                actor.executed = actor.last_checkpoint
                displaced += 1
        return displaced

    # -- the per-actor process -------------------------------------------------

    def _actor_proc(self, actor: _SimActor, horizon: float):
        config = self.config
        engine = self.engine
        while engine.now < horizon:
            node = actor.node
            yield node.cores.acquire()
            yield engine.timeout(config.method_duration)
            node.cores.release()
            if not node.alive:
                continue  # work lost with the node; kill_nodes set up replay
            if actor.replayed > 0:
                actor.replayed -= 1
                actor.executed += 1
                self.total_replayed += 1
                self.timeline.record(engine.now, "reexecuted")
                continue
            actor.executed += 1
            self.timeline.record(engine.now, "original")
            if (
                config.checkpoint_interval
                and actor.executed - actor.last_checkpoint
                >= config.checkpoint_interval
            ):
                yield node.cores.acquire()
                yield engine.timeout(config.checkpoint_duration)
                node.cores.release()
                if node.alive:
                    actor.last_checkpoint = actor.executed
                    self.total_checkpoints += 1
                    self.timeline.record(engine.now, "checkpoint")

    def run(self, horizon: float, kill_at: Optional[float] = None, kill_nodes: int = 0):
        """Run until ``horizon``; optionally kill ``kill_nodes`` nodes at
        ``kill_at`` seconds."""
        for actor in self.actors:
            self.engine.process(self._actor_proc(actor, horizon))
        if kill_at is not None and kill_nodes:
            def do_kill() -> None:
                self.kill_nodes(list(range(kill_nodes)))

            self.engine._schedule(kill_at, do_kill)
        self.engine.run(until=horizon)
        return self.timeline
