"""Network cost model for the simulated cluster.

Ray stripes large objects across multiple TCP connections (paper Section
4.2.4); the Fig 12a comparison against OpenMPI hinges on exactly this —
OpenMPI sends on a single thread and cannot saturate the 25 Gbps NIC.  The
model is:

    effective_bandwidth = min(streams × per_stream_bandwidth, nic_bandwidth)
    duration            = latency + size / effective_bandwidth

Defaults are calibrated to the paper's AWS setup: 25 Gbps ≈ 3.1 GB/s NIC,
single TCP stream ≈ 1.2 GB/s (which reproduces "OpenMPI ~1.5–2× slower"
at 100 MB–1 GB), 100 µs one-way latency.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.engine import Engine, SimEvent


@dataclass(frozen=True)
class NetworkConfig:
    latency: float = 100e-6  # per-transfer setup latency (seconds)
    per_stream_bandwidth: float = 1.2e9  # bytes/second over one TCP stream
    nic_bandwidth: float = 3.1e9  # 25 Gbps NIC in bytes/second
    default_streams: int = 8  # Ray stripes over this many connections


class Network:
    """Point-to-point transfers with multi-stream striping."""

    def __init__(self, engine: Engine, config: NetworkConfig = NetworkConfig()):
        self.engine = engine
        self.config = config
        self.transfers = 0
        self.bytes_moved = 0

    def effective_bandwidth(self, streams: int) -> float:
        streams = max(1, streams)
        return min(
            streams * self.config.per_stream_bandwidth, self.config.nic_bandwidth
        )

    def transfer_duration(self, size: int, streams: int = 0) -> float:
        """Seconds to move ``size`` bytes with ``streams`` stripes."""
        if size < 0:
            raise ValueError("negative transfer size")
        streams = streams or self.config.default_streams
        return self.config.latency + size / self.effective_bandwidth(streams)

    def transfer(self, size: int, streams: int = 0) -> SimEvent:
        """An event firing when the transfer completes."""
        self.transfers += 1
        self.bytes_moved += size
        return self.engine.timeout(self.transfer_duration(size, streams))
