"""The scheduler policy league: race every registered policy in the sim.

One :func:`race` call runs each (policy, workload) pair on a fresh
simulated cluster and returns league-table rows — tasks/sec, p50/p99 task
latency, and the *wall-clock* microseconds each placement decision cost
(simulated time never advances during a decision, so the two clocks
measure different things: the first three columns are workload outcomes,
the last is the policy's own compute price).

Everything except ``placement_us`` is a pure function of
``(policy, workload, tasks, num_nodes, seed)``: the simulator is
deterministic, workload generators are seeded, and policies carry their
own seeded RNGs — so same-seed league tables are byte-identical
(``tests/test_scheduler_policies.py`` pins this).

The policy objects raced here are the *same classes* the live runtime
loads via ``repro.init(scheduler_policy=...)`` — there is no simulator
reimplementation of placement to drift out of sync.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.core.scheduling import available_policies, make_policy
from repro.sim.cluster import SimCluster, SimConfig
from repro.sim.workloads import empty_tasks, fanin_tasks, skewed_actor_tasks

#: The three league workload shapes (ISSUE: embarrassingly parallel
#: no-ops, locality-heavy wide fan-in, skewed actor-heavy).
WORKLOADS = ("ep_noop", "locality_fanin", "skewed_actors")

#: Placement policies that only make sense with a specific spillback rule:
#: the Dask-style central queue routes *every* task through the central
#: decision point.
POLICY_SPILLBACK: Dict[str, str] = {"central_queue": "always"}


def build_workload(
    name: str, cluster: SimCluster, count: int, seed: int
) -> tuple:
    """(tasks, origins) for one league workload on ``cluster``."""
    import random

    rng = random.Random(seed ^ 0xA5A5)
    live = cluster.live_node_indices()
    if name == "ep_noop":
        # Driver-submits pattern: all tasks enter on node 0 and fan out
        # purely through scheduling.  A small nonzero duration lets backlog
        # build so spillback (and hence placement) actually engages.
        return empty_tasks(count, duration=1e-3), [live[0]] * count
    if name == "locality_fanin":
        tasks = fanin_tasks(cluster, count, seed=seed)
        return tasks, [rng.choice(live) for _ in tasks]
    if name == "skewed_actors":
        tasks = skewed_actor_tasks(count, seed=seed)
        # Hot-node skew: 70% of submissions originate on two nodes.
        hot = live[: max(1, len(live) // 8)]
        origins = [
            rng.choice(hot) if rng.random() < 0.7 else rng.choice(live)
            for _ in tasks
        ]
        return tasks, origins
    raise ValueError(f"unknown league workload {name!r}; known: {WORKLOADS}")


def race_one(
    policy: Any,
    workload: str,
    tasks: int,
    num_nodes: int = 32,
    cpus_per_node: int = 16,
    seed: int = 0,
    spillback: Optional[Any] = None,
) -> Dict[str, Any]:
    """Run one policy on one workload; returns a league-table row."""
    policy_obj = make_policy(policy)
    if spillback is None:
        spillback = POLICY_SPILLBACK.get(policy_obj.name)
    cluster = SimCluster(
        SimConfig(
            num_nodes=num_nodes,
            cpus_per_node=cpus_per_node,
            scheduler_policy=policy_obj,
            spillback_policy=spillback,
        )
    )
    task_list, origins = build_workload(workload, cluster, tasks, seed)
    latencies = cluster.run_all(task_list, origins=origins)
    makespan = cluster.engine.now
    ordered = sorted(latencies)
    n = len(ordered)
    decisions = cluster.placement_decisions
    return {
        "policy": policy_obj.name,
        "workload": workload,
        "tasks": n,
        "num_nodes": num_nodes,
        "seed": seed,
        "makespan_s": makespan,
        "tasks_per_sec": (n / makespan) if makespan > 0 else float("inf"),
        "p50_latency_ms": ordered[n // 2] * 1e3,
        "p99_latency_ms": ordered[min(n - 1, (99 * n) // 100)] * 1e3,
        "mean_latency_ms": sum(ordered) / n * 1e3,
        "forwarded": cluster.tasks_forwarded,
        "scheduled_locally": cluster.tasks_local,
        "placement_decisions": decisions,
        # Wall-clock cost of the policy itself; excluded from the
        # determinism contract (everything above is seed-exact).
        "placement_us": (
            cluster.placement_wall_seconds / decisions * 1e6 if decisions else 0.0
        ),
    }


def race(
    policies: Optional[Sequence[Any]] = None,
    workloads: Sequence[str] = WORKLOADS,
    tasks: int = 100_000,
    num_nodes: int = 32,
    cpus_per_node: int = 16,
    seed: int = 0,
) -> List[Dict[str, Any]]:
    """Race ``policies`` (default: the whole registry) across ``workloads``."""
    if policies is None:
        policies = available_policies()
    rows = []
    for workload in workloads:
        for policy in policies:
            rows.append(
                race_one(
                    policy,
                    workload,
                    tasks,
                    num_nodes=num_nodes,
                    cpus_per_node=cpus_per_node,
                    seed=seed,
                )
            )
    return rows
