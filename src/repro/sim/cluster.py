"""Simulated Ray cluster: bottom-up scheduling, object locality, lineage.

The simulator mirrors the control-plane policies of :mod:`repro.core` under
a discrete-event clock:

* tasks are submitted to the *origin node's* local scheduler (a single-
  threaded event loop with a fixed per-task service time, as in the paper's
  implementation) and spill to the global scheduler when the node is
  overloaded (a pluggable ``SpillbackPolicy``) or infeasible;
* the global scheduler places via the *same*
  :class:`~repro.core.scheduling.SchedulerPolicy` objects the live runtime
  loads — the default ``lowest_wait`` scores backlog × EWMA(task duration)
  plus, when ``locality_aware``, remote input bytes ÷ bandwidth;
  ``SimConfig(scheduler_policy=...)`` swaps in any registered policy (see
  ``scripts/bench_scheduling.py`` for the league table);
* task inputs are replicated to the executing node's store before the task
  runs; objects lost to node failures are reconstructed by re-executing
  their producing task from lineage, recursively.

Cost-model defaults are calibrated against the paper's own measurements
(55 µs/task local scheduler service → 1.8 M tasks/s at 100 nodes; 25 Gbps
NIC; ~1 ms global scheduling round trip).
"""

from __future__ import annotations

import itertools
import time as _time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.scheduling import (
    ClusterView,
    DepInfo,
    LowestEstimatedWaitPolicy,
    SimNodeView,
    TaskView,
    make_policy,
    make_spillback,
)
from repro.sim.engine import Engine, SimEvent, SimResource
from repro.sim.metrics import LatencyStats, ThroughputTimeline
from repro.sim.network import Network, NetworkConfig


class SimulationError(RuntimeError):
    """An impossible situation in the simulated cluster (e.g. unrecoverable
    object loss)."""


@dataclass(frozen=True)
class SimTask:
    """One simulated task: duration, inputs by name, outputs with sizes."""

    name: str
    duration: float
    deps: Tuple[str, ...] = ()
    outputs: Tuple[Tuple[str, int], ...] = ()
    num_cpus: int = 1
    num_gpus: int = 0


@dataclass
class SimConfig:
    """Cluster shape and calibrated cost model."""

    num_nodes: int = 2
    cpus_per_node: int = 16
    gpus_per_node: int = 0
    # Scheduling costs.
    local_scheduler_service: float = 55e-6  # per-task local decision+dispatch
    global_scheduler_rtt: float = 1e-3  # forward + decide + place round trip
    extra_scheduler_delay: float = 0.0  # Fig 12b latency injection
    gcs_latency: float = 150e-6  # one object-table lookup
    # GCS write-path model: every task performs a few single-key writes
    # (task table add + status updates + object table).  Each shard is a
    # single-writer chain; sharding is what scales the write path (§7:
    # "we were able to scale by adding more shards").
    gcs_shards: int = 0  # 0 disables GCS write-path modelling
    gcs_ops_per_task: int = 3
    gcs_op_service: float = 20e-6  # per single-key chain write
    spillback_threshold: int = 16
    locality_aware: bool = True
    # Pluggable scheduling: the same registry names / SchedulerPolicy and
    # SpillbackPolicy objects the live runtime accepts
    # (repro.core.scheduling).  None selects the paper defaults —
    # lowest_wait (honoring ``locality_aware``) over a backlog-threshold
    # spillback.
    scheduler_policy: Any = None
    spillback_policy: Any = None
    # Data plane.
    network: NetworkConfig = field(default_factory=NetworkConfig)
    transfer_streams: int = 8
    # Metrics.
    timeline_bucket: float = 1.0


class SimNode:
    """One simulated node: cores, GPUs, a store, a local scheduler loop."""

    def __init__(self, engine: Engine, index: int, config: SimConfig):
        self.index = index
        self.alive = True
        self.cores = SimResource(engine, config.cpus_per_node)
        self.gpus = (
            SimResource(engine, config.gpus_per_node)
            if config.gpus_per_node
            else None
        )
        self.scheduler = SimResource(engine, 1)  # single-threaded scheduler
        self.nic = SimResource(engine, 1)  # one inbound transfer at a time
        self.store: Set[str] = set()
        self.backlog = 0  # placed here, not yet finished

    def feasible(self, task: SimTask) -> bool:
        if task.num_cpus > self.cores.capacity:
            return False
        if task.num_gpus and (self.gpus is None or task.num_gpus > self.gpus.capacity):
            return False
        return True


class SimCluster:
    """The simulated cluster, mirroring the paper's system layer."""

    def __init__(self, config: Optional[SimConfig] = None, engine: Optional[Engine] = None):
        self.config = config or SimConfig()
        self.engine = engine or Engine()
        self.network = Network(self.engine, self.config.network)
        self.nodes: List[SimNode] = [
            SimNode(self.engine, i, self.config) for i in range(self.config.num_nodes)
        ]
        self.gcs_shards: List[SimResource] = [
            SimResource(self.engine, 1) for _ in range(self.config.gcs_shards)
        ]
        self._gcs_rr = 0
        self.object_size: Dict[str, int] = {}
        self.object_locations: Dict[str, Set[int]] = {}
        self.lineage: Dict[str, SimTask] = {}
        self._reconstructing: Dict[str, SimEvent] = {}
        self._creation_events: Dict[str, SimEvent] = {}

        self.timeline = ThroughputTimeline(self.config.timeline_bucket)
        self.latency = LatencyStats()
        self.tasks_executed = 0
        self.tasks_reexecuted = 0
        self.tasks_forwarded = 0
        self.tasks_local = 0
        self._avg_duration = 0.001
        self._task_seq = itertools.count()

        # The placement policy and spillback rule — the very classes the
        # live runtime loads via repro.init(scheduler_policy=...).
        if self.config.scheduler_policy is None:
            self.policy = LowestEstimatedWaitPolicy(
                locality_aware=self.config.locality_aware
            )
        else:
            self.policy = make_policy(self.config.scheduler_policy)
        self.spillback = make_spillback(
            self.config.spillback_policy,
            threshold=self.config.spillback_threshold,
        )
        # Placement-decision cost in *wall* time (the simulated clock never
        # advances during a decision): the league table's µs-per-decision.
        self.placement_decisions = 0
        self.placement_wall_seconds = 0.0

    # ------------------------------------------------------------------
    # Data placement
    # ------------------------------------------------------------------

    def put_object(self, name: str, size: int, node_index: int) -> None:
        """Pre-place an input object on a node (driver-side ``put``)."""
        self.object_size[name] = size
        self.object_locations.setdefault(name, set()).add(node_index)
        self.nodes[node_index].store.add(name)

    def live_locations(self, name: str) -> List[int]:
        return [
            i
            for i in self.object_locations.get(name, ())
            if self.nodes[i].alive
        ]

    # ------------------------------------------------------------------
    # Submission (bottom-up)
    # ------------------------------------------------------------------

    def submit(
        self, task: SimTask, origin: int = 0, category: str = "original"
    ) -> SimEvent:
        """Submit a task from a driver/worker on node ``origin``.

        Returns an event whose value is the task's end-to-end latency.
        """
        done = self.engine.event()
        self.engine.process(self._submit_proc(task, origin, category, done))
        return done

    def _submit_proc(self, task: SimTask, origin: int, category: str, done: SimEvent):
        started = self.engine.now
        node = self.nodes[origin]
        # The local scheduler is a single-threaded event loop: each task
        # costs one service quantum (this is what bounds per-node rates).
        yield node.scheduler.acquire()
        yield self.engine.timeout(self.config.local_scheduler_service)
        node.scheduler.release()

        schedule_locally = (
            node.alive
            and node.feasible(task)
            and not self.spillback.should_forward(
                self._task_view(task), SimNodeView(node, 0)
            )
        )
        if schedule_locally:
            self.tasks_local += 1
            target = node
        else:
            self.tasks_forwarded += 1
            yield self.engine.timeout(
                self.config.global_scheduler_rtt + self.config.extra_scheduler_delay
            )
            target = self._pick_global(task)
        yield from self._execute_on(task, target, category)
        done.succeed(self.engine.now - started)

    @staticmethod
    def _task_view(task: SimTask) -> TaskView:
        resources = {"CPU": float(task.num_cpus)}
        if task.num_gpus:
            resources["GPU"] = float(task.num_gpus)
        return TaskView(
            key=task.name, name=task.name, resources=resources, deps=task.deps
        )

    def _cluster_view(self, task: SimTask, candidates: List[SimNode]) -> ClusterView:
        """Same decision inputs the runtime's view carries: backlogs and
        free resources per node, dependency sizes + locations (one lookup
        per dependency), EWMA duration, and effective NIC bandwidth."""
        deps: Dict[str, DepInfo] = {}
        for dep in task.deps:
            if dep in deps or dep not in self.object_size:
                continue
            deps[dep] = DepInfo(
                self.object_size[dep],
                frozenset(self.object_locations.get(dep, ())),
            )
        return ClusterView(
            nodes=[SimNodeView(node, i) for i, node in enumerate(candidates)],
            deps=deps,
            avg_task_duration=self._avg_duration,
            bandwidth=self.network.effective_bandwidth(self.config.transfer_streams),
        )

    def _pick_global(self, task: SimTask) -> SimNode:
        candidates = [n for n in self.nodes if n.alive and n.feasible(task)]
        if not candidates:
            raise SimulationError(f"no feasible node for task {task.name}")
        view = self._cluster_view(task, candidates)
        start = _time.perf_counter()
        placement = self.policy.place(self._task_view(task), view)
        self.placement_wall_seconds += _time.perf_counter() - start
        self.placement_decisions += 1
        return placement.node.node

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def _execute_on(self, task: SimTask, node: SimNode, category: str):
        node.backlog += 1
        try:
            # Replicate missing inputs to the local store (in parallel).
            missing = [dep for dep in task.deps if dep not in node.store]
            if missing:
                fetches = [
                    self.engine.process(self._fetch(dep, node)) for dep in missing
                ]
                yield self.engine.all_of(fetches)
            # Acquire resources atomically: a wide task holds nothing while
            # it waits, so concurrent multi-core tasks cannot deadlock each
            # other with partial allocations.
            yield node.cores.acquire_many(task.num_cpus)
            if task.num_gpus:
                yield node.gpus.acquire_many(task.num_gpus)
            yield self.engine.timeout(task.duration)
            node.cores.release_many(task.num_cpus)
            if task.num_gpus:
                node.gpus.release_many(task.num_gpus)
        finally:
            node.backlog -= 1
        if not node.alive:
            # The node died under us: the work is lost; rerun elsewhere.
            self.tasks_reexecuted += 1
            target = self._pick_global(task)
            yield from self._execute_on(task, target, "reexecuted")
            return
        # Register outputs (object table writes) and lineage.
        for name, size in task.outputs:
            self.object_size[name] = size
            self.object_locations.setdefault(name, set()).add(node.index)
            node.store.add(name)
            self.lineage[name] = task
            creation = self._creation_events.pop(name, None)
            if creation is not None:
                creation.succeed()  # GCS pub-sub: notify waiting fetchers
        # GCS write path: the task's single-key writes serialize through
        # their (ID-hashed, here round-robin) shards.
        if self.gcs_shards:
            yield from self._gcs_writes(self.config.gcs_ops_per_task)
        self.tasks_executed += 1
        self._avg_duration = 0.2 * max(task.duration, 1e-6) + 0.8 * self._avg_duration
        self.timeline.record(self.engine.now, category)
        if category == "reexecuted":
            pass  # already counted at trigger time

    def _gcs_writes(self, count: int):
        """Serialize ``count`` single-key writes through GCS shards.

        IDs hash uniformly across shards; round-robin is the deterministic
        equivalent for the simulation.
        """
        for _ in range(count):
            shard = self.gcs_shards[self._gcs_rr % len(self.gcs_shards)]
            self._gcs_rr += 1
            yield shard.acquire()
            yield self.engine.timeout(self.config.gcs_op_service)
            shard.release()

    def _fetch(self, name: str, node: SimNode):
        """Make object ``name`` local to ``node`` (transfer or reconstruct)."""
        while name not in node.store:
            sources = self.live_locations(name)
            if sources:
                yield self.engine.timeout(self.config.gcs_latency)  # lookup
                size = self.object_size.get(name, 0)
                # Inbound transfers contend for the receiving node's NIC —
                # without locality awareness, hot receivers queue up.
                yield node.nic.acquire()
                yield self.network.transfer(size, self.config.transfer_streams)
                node.nic.release()
                if node.alive:
                    node.store.add(name)
                    self.object_locations.setdefault(name, set()).add(node.index)
                return
            if name not in self.lineage:
                if name in self.object_size:
                    # The object existed (a driver put) but every copy is
                    # gone and there is no producing task to replay.
                    raise SimulationError(f"object {name} lost with no lineage")
                # Not created yet: wait for the producing task (the real
                # runtime registers a GCS pub-sub callback here, Fig 7b).
                event = self._creation_events.get(name)
                if event is None:
                    event = self.engine.event()
                    self._creation_events[name] = event
                yield event
                continue
            yield from self._reconstruct(name)

    def _reconstruct(self, name: str):
        """Re-execute the lineage of a lost object (paper Fig 11a)."""
        inflight = self._reconstructing.get(name)
        if inflight is not None:
            yield inflight
            return
        producer = self.lineage.get(name)
        if producer is None:
            raise SimulationError(f"object {name} lost with no lineage")
        event = self.engine.event()
        self._reconstructing[name] = event
        self.tasks_reexecuted += 1
        target = self._pick_global(producer)
        yield from self._execute_on(producer, target, "reexecuted")
        del self._reconstructing[name]
        event.succeed()

    # ------------------------------------------------------------------
    # Failures / elasticity
    # ------------------------------------------------------------------

    def kill_node(self, index: int) -> None:
        node = self.nodes[index]
        node.alive = False
        for name in node.store:
            locations = self.object_locations.get(name)
            if locations is not None:
                locations.discard(index)
        node.store.clear()

    def add_node(self) -> int:
        node = SimNode(self.engine, len(self.nodes), self.config)
        self.nodes.append(node)
        return node.index

    def live_node_indices(self) -> List[int]:
        return [n.index for n in self.nodes if n.alive]

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------

    def run_all(
        self, tasks: Sequence[SimTask], origins: Optional[Sequence[int]] = None
    ) -> List[float]:
        """Submit all tasks (round-robin origins by default), run to
        completion, and return per-task latencies."""
        if origins is None:
            live = self.live_node_indices()
            origins = [live[i % len(live)] for i in range(len(tasks))]
        events = [
            self.submit(task, origin) for task, origin in zip(tasks, origins)
        ]
        self.engine.run()
        return [e.value for e in events]
