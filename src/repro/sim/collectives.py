"""Ring allreduce cost model (Figures 12a and 12b).

Ring allreduce over ``n`` participants performs ``2(n-1)`` rounds; in each
round every node sends and receives one chunk of ``size/n`` bytes.  Per
round, a Ray implementation pays:

* the chunk transfer over the NIC (striped across ``streams`` TCP
  connections — Ray's multithreaded transfer; the single-stream variant is
  the paper's "Ray*");
* two object-store memcpys (write the received chunk, read the reduced
  chunk) at shared-memory bandwidth;
* the scheduling cost of the round's tasks (each round submits one task
  per node; rounds are latency-bound on the scheduler — Figure 12b shows
  that adding a few ms of scheduler latency nearly doubles completion
  time);
* any injected ``scheduler_delay``, plus an extra GCS round trip per round
  when ``coupled_dispatch`` models a design where object locations live in
  the scheduler (the ablation argued in Related Work).

The OpenMPI baseline (see :mod:`repro.baselines.mpi_allreduce`) sends and
receives sequentially on one thread and has no store or scheduler costs
but a small per-round software overhead.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RingAllreduceConfig:
    num_nodes: int = 16
    streams: int = 8  # Ray stripes transfers; 1 = the paper's "Ray*"
    per_stream_bandwidth: float = 1.2e9  # bytes/s per TCP stream
    nic_bandwidth: float = 3.1e9  # 25 Gbps
    store_bandwidth: float = 10e9  # shared-memory memcpy
    task_overhead: float = 3e-3  # scheduling+IPC per round of tasks
    scheduler_delay: float = 0.0  # Fig 12b injection (per scheduled round)
    gcs_rtt: float = 300e-6  # extra per-round RTT if dispatch is coupled
    coupled_dispatch: bool = False  # ablation: scheduler on transfer path


def ring_allreduce_time(object_size: int, config: RingAllreduceConfig) -> float:
    """Completion time (seconds) of one allreduce of ``object_size`` bytes."""
    n = config.num_nodes
    if n < 2:
        return 0.0
    chunk = object_size / n
    bandwidth = min(
        config.streams * config.per_stream_bandwidth, config.nic_bandwidth
    )
    rounds = 2 * (n - 1)
    transfer = chunk / bandwidth
    store = 2 * chunk / config.store_bandwidth  # write received + read reduced
    per_round = transfer + store + config.task_overhead + config.scheduler_delay
    if config.coupled_dispatch:
        per_round += config.gcs_rtt
    return rounds * per_round


def ring_allreduce_tasks(num_nodes: int) -> int:
    """Number of tasks one allreduce submits (scheduler load; the paper
    notes ring reduce scales quadratically in total tasks across rounds)."""
    return 2 * (num_nodes - 1) * num_nodes
