"""One typed options surface for tasks, actors, actor methods, and deployments.

Historically ``RemoteFunction.options``, ``ActorClass.options`` and
``ActorMethod.options`` each carried their own keyword list, their own
(diverging) inheritance rules, and their own ad-hoc unknown-key check.
This module replaces all of that with a single :class:`Options` value
object and one validation path:

* every surface ("task", "actor", "method", "deployment") declares the
  fields it accepts in :data:`SURFACE_FIELDS`;
* :meth:`Options.for_surface` is the only place unknown keys are
  rejected — with a did-you-mean suggestion and, when the key exists on
  a *different* surface, a hint naming it;
* explicitly-passed values (including an explicit ``None``) are
  distinguished from never-passed ones via the :data:`UNSET` sentinel,
  which is what makes ``f.options(a).options(b)`` merge instead of
  replace.

``repro.serve.deployment`` consumes the same object (surface
"deployment") instead of growing a fourth kwargs filter.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, fields
from typing import Any, Dict, FrozenSet, Mapping, Tuple


class _UnsetType:
    """Sentinel distinguishing "never passed" from an explicit ``None``."""

    _instance = None

    def __new__(cls) -> "_UnsetType":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "<unset>"

    def __bool__(self) -> bool:
        return False

    def __reduce__(self):
        return (_UnsetType, ())


UNSET = _UnsetType()


#: Which Options fields each ``.options()`` surface accepts.
SURFACE_FIELDS: Dict[str, FrozenSet[str]] = {
    "task": frozenset(
        {
            "num_returns",
            "num_cpus",
            "num_gpus",
            "resources",
            "max_retries",
            "retry_exceptions",
        }
    ),
    "actor": frozenset(
        {
            "num_cpus",
            "num_gpus",
            "resources",
            "checkpoint_interval",
            "max_restarts",
            "name",
        }
    ),
    "method": frozenset({"num_returns", "max_retries", "retry_exceptions"}),
    "deployment": frozenset(
        {
            "num_replicas",
            "max_batch_size",
            "batch_wait_timeout_s",
            "max_queue_per_replica",
            "num_cpus",
            "num_gpus",
            "resources",
            "max_restarts",
            "name",
        }
    ),
}


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _check_non_negative_int(key: str, value: Any) -> None:
    if not isinstance(value, int) or isinstance(value, bool) or value < 0:
        raise TypeError(f"option {key!r} must be a non-negative int, got {value!r}")


def _check_value(key: str, value: Any) -> None:
    """Per-field value validation, shared by every surface."""
    if key == "num_returns":
        if not isinstance(value, int) or isinstance(value, bool) or value < 1:
            raise TypeError(f"option 'num_returns' must be an int >= 1, got {value!r}")
    elif key in ("num_cpus", "num_gpus"):
        if value is None:
            return
        if not _is_number(value) or value < 0:
            raise TypeError(f"option {key!r} must be a non-negative number, got {value!r}")
    elif key == "resources":
        if value is None:
            return
        if not isinstance(value, Mapping) or not all(
            isinstance(k, str) and _is_number(v) for k, v in value.items()
        ):
            raise TypeError(
                f"option 'resources' must be a dict of resource name -> amount, got {value!r}"
            )
    elif key in ("max_retries", "max_restarts"):
        _check_non_negative_int(key, value)
    elif key == "retry_exceptions":
        if value is None:
            return
        if isinstance(value, type):
            raise TypeError(
                "option 'retry_exceptions' must be a sequence of exception "
                f"types, got the bare type {value!r} (wrap it in a list)"
            )
        try:
            ok = all(isinstance(e, type) and issubclass(e, BaseException) for e in value)
        except TypeError:
            ok = False
        if not ok:
            raise TypeError(
                f"option 'retry_exceptions' must be a sequence of exception types, got {value!r}"
            )
    elif key == "checkpoint_interval":
        if value is None:
            return
        if not isinstance(value, int) or isinstance(value, bool) or value < 1:
            raise TypeError(
                f"option 'checkpoint_interval' must be None or an int >= 1, got {value!r}"
            )
    elif key == "name":
        if value is None:
            return
        if not isinstance(value, str) or not value:
            raise TypeError(f"option 'name' must be a non-empty string, got {value!r}")
    elif key in ("num_replicas", "max_batch_size", "max_queue_per_replica"):
        if not isinstance(value, int) or isinstance(value, bool) or value < 1:
            raise TypeError(f"option {key!r} must be an int >= 1, got {value!r}")
    elif key == "batch_wait_timeout_s":
        if not _is_number(value) or value < 0:
            raise TypeError(
                f"option 'batch_wait_timeout_s' must be a non-negative number, got {value!r}"
            )


def suggest(key: str, candidates) -> str:
    """A ``did you mean`` clause for an unknown key ('' when no match)."""
    matches = difflib.get_close_matches(key, sorted(candidates), n=1, cutoff=0.6)
    return f"; did you mean {matches[0]!r}?" if matches else ""


def _unknown_key_error(surface: str, key: str) -> TypeError:
    allowed = SURFACE_FIELDS[surface]
    hint = suggest(key, allowed)
    if not hint:
        homes = sorted(s for s, keys in SURFACE_FIELDS.items() if key in keys)
        if homes:
            hint = f" ({key!r} is valid on the {'/'.join(homes)} surface)"
    return TypeError(
        f"unknown {surface} option {key!r}{hint}; valid {surface} options: "
        f"{sorted(allowed)}"
    )


@dataclass(frozen=True)
class Options:
    """Validated, mergeable invocation options (all surfaces).

    Fields left at :data:`UNSET` were never passed; ``merged`` lets a
    later ``.options()`` call override only the fields it actually sets.
    """

    num_returns: Any = UNSET
    num_cpus: Any = UNSET
    num_gpus: Any = UNSET
    resources: Any = UNSET
    max_retries: Any = UNSET
    retry_exceptions: Any = UNSET
    checkpoint_interval: Any = UNSET
    max_restarts: Any = UNSET
    name: Any = UNSET
    num_replicas: Any = UNSET
    max_batch_size: Any = UNSET
    batch_wait_timeout_s: Any = UNSET
    max_queue_per_replica: Any = UNSET

    @classmethod
    def field_names(cls) -> Tuple[str, ...]:
        return tuple(f.name for f in fields(cls))

    @classmethod
    def for_surface(cls, surface: str, **kwargs: Any) -> "Options":
        """THE validation path: reject unknown keys (with did-you-mean),
        type/value-check the known ones, and freeze the result."""
        if surface not in SURFACE_FIELDS:
            raise ValueError(
                f"unknown options surface {surface!r}; "
                f"expected one of {sorted(SURFACE_FIELDS)}"
            )
        allowed = SURFACE_FIELDS[surface]
        values: Dict[str, Any] = {}
        for key, value in kwargs.items():
            if key not in allowed:
                raise _unknown_key_error(surface, key)
            _check_value(key, value)
            if key == "retry_exceptions" and value is not None:
                value = tuple(value)
            elif key == "resources" and value is not None:
                value = dict(value)
            values[key] = value
        return cls(**values)

    def is_set(self, field_name: str) -> bool:
        return getattr(self, field_name) is not UNSET

    def get(self, field_name: str, default: Any = None) -> Any:
        value = getattr(self, field_name)
        return default if value is UNSET else value

    def set_fields(self) -> Dict[str, Any]:
        """Only the explicitly-passed fields, as a plain dict."""
        return {
            f.name: getattr(self, f.name)
            for f in fields(self)
            if getattr(self, f.name) is not UNSET
        }

    def merged(self, other: "Options") -> "Options":
        """A new Options where ``other``'s set fields win; this object's
        set fields survive where ``other`` left them unset.  ``resources``
        dicts replace wholesale (no per-key union)."""
        values = self.set_fields()
        values.update(other.set_fields())
        return Options(**values)

    def __repr__(self) -> str:
        body = ", ".join(f"{k}={v!r}" for k, v in sorted(self.set_fields().items()))
        return f"Options({body})"
