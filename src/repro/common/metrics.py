"""Cluster-wide metrics registry: low-overhead runtime instrumentation.

The paper's argument for the GCS is that centralizing control state makes
system-wide introspection trivial (Section 7).  The event log covers
*per-task* history; this module covers *aggregate* health — counters,
gauges, and histograms maintained inline by the hot layers (schedulers,
object stores, transfer, GCS shards, the notification layer) and exported
in Prometheus text-exposition format or as JSON by the dashboard.

Design constraints:

* **Low overhead** — one lock acquisition per update; histogram bucketing
  is a :func:`bisect.bisect_left` over a fixed tuple.  A disabled registry
  hands out shared null metrics whose update methods are single-``pass``
  no-ops, so instrumented code needs no ``if`` guards.
* **Thread safety** — every metric carries its own lock; gauges may
  instead be *callback gauges* that read a live value at scrape time
  (e.g. a scheduler's queue depth) and take no update locks at all.
  These locks are deliberately raw ``threading`` primitives, never
  ``lockwatch`` factories: the lock witness reports hold times *into*
  this registry (``lock_hold_seconds``), so watching a metric's own lock
  would recurse (release → observe → acquire → release → …).
* **Fixed log-spaced histogram buckets** — quantiles are estimated from
  bucket counts with the same nearest-rank rule the simulator's
  :class:`repro.sim.metrics.LatencyStats` uses on raw samples
  (:func:`percentile_rank`), so the two layers agree on quantile math.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

# 1 µs .. ~2100 s in 3 buckets per decade: covers sub-millisecond wakeup
# latencies and multi-minute job phases with the same fixed layout.
DEFAULT_BUCKETS: Tuple[float, ...] = tuple(
    1e-6 * (10 ** (i / 3)) for i in range(29)
)


# ---------------------------------------------------------------------------
# Shared quantile math (used by Histogram here and LatencyStats in the sim)
# ---------------------------------------------------------------------------


def percentile_rank(count: int, p: float) -> int:
    """Nearest-rank index of the ``p``-th percentile among ``count`` ordered
    samples.  The single definition both the runtime histograms and the
    simulator's raw-sample stats use, so their quantiles agree."""
    if count <= 0:
        raise ValueError("percentile of an empty collection")
    return min(count - 1, max(0, int(round(p / 100 * (count - 1)))))


def percentile(sorted_samples: Sequence[float], p: float) -> float:
    """The ``p``-th percentile of pre-sorted samples (NaN when empty)."""
    if not sorted_samples:
        return math.nan
    return sorted_samples[percentile_rank(len(sorted_samples), p)]


def summarize(samples: Sequence[float]) -> Dict[str, float]:
    """min/mean/max/p50/p95/p99 of raw samples, NaN-filled when empty."""
    if not samples:
        return {k: math.nan for k in ("min", "mean", "max", "p50", "p95", "p99")}
    ordered = sorted(samples)
    return {
        "min": ordered[0],
        "mean": sum(ordered) / len(ordered),
        "max": ordered[-1],
        "p50": percentile(ordered, 50),
        "p95": percentile(ordered, 95),
        "p99": percentile(ordered, 99),
    }


# ---------------------------------------------------------------------------
# Metric primitives
# ---------------------------------------------------------------------------


class Counter:
    """A monotonically increasing count (events, bytes, decisions)."""

    __slots__ = ("_lock", "_value")

    def __init__(self):
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters are monotonic; use a Gauge to go down")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """A point-in-time value: either set explicitly or read via callback.

    Callback gauges (``fn=...``) cost nothing on the update path — the
    value is pulled from live state at scrape time.
    """

    __slots__ = ("_lock", "_value", "_fn")

    def __init__(self, fn: Optional[Callable[[], float]] = None):
        self._lock = threading.Lock()
        self._value = 0.0
        self._fn = fn

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        if self._fn is not None:
            try:
                return float(self._fn())
            except Exception:  # pragma: no cover - scrape must never raise
                return math.nan
        with self._lock:
            return self._value


class Histogram:
    """Fixed log-spaced-bucket distribution (latencies, sizes).

    ``buckets`` are upper bounds; observations above the last bound land
    in the implicit +Inf bucket.  Quantiles are *estimates*: the bucket
    containing the nearest-rank sample is located with
    :func:`percentile_rank` and its upper bound is reported.
    """

    __slots__ = ("_lock", "buckets", "_counts", "_sum", "_count", "_min", "_max")

    def __init__(self, buckets: Optional[Sequence[float]] = None):
        self.buckets: Tuple[float, ...] = tuple(buckets or DEFAULT_BUCKETS)
        if list(self.buckets) != sorted(self.buckets):
            raise ValueError("histogram buckets must be sorted")
        self._lock = threading.Lock()
        self._counts = [0] * (len(self.buckets) + 1)  # +1 for +Inf
        self._sum = 0.0
        self._count = 0
        self._min = math.inf
        self._max = -math.inf

    def observe(self, value: float) -> None:
        index = bisect_left(self.buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def mean(self) -> float:
        with self._lock:
            return self._sum / self._count if self._count else math.nan

    def bucket_counts(self) -> List[int]:
        with self._lock:
            return list(self._counts)

    def percentile(self, p: float) -> float:
        """Upper bound of the bucket holding the nearest-rank sample."""
        with self._lock:
            if not self._count:
                return math.nan
            rank = percentile_rank(self._count, p)
            cumulative = 0
            for index, count in enumerate(self._counts):
                cumulative += count
                if cumulative > rank:
                    if index < len(self.buckets):
                        return self.buckets[index]
                    return self._max  # +Inf bucket: best bound we have
            return self._max  # pragma: no cover - unreachable

    def snapshot(self) -> Dict[str, float]:
        with self._lock:
            count, total = self._count, self._sum
            low = self._min if count else math.nan
            high = self._max if count else math.nan
        return {
            "count": count,
            "sum": total,
            "mean": total / count if count else math.nan,
            "min": low,
            "max": high,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }


class _NullMetric:
    """Shared stand-in when the registry is disabled: every op is a no-op."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    @property
    def value(self) -> float:
        return 0.0

    @property
    def count(self) -> int:
        return 0


_NULL_METRIC = _NullMetric()


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


class _Family:
    """All series of one metric name (one per distinct label set)."""

    __slots__ = ("name", "kind", "help", "series")

    def __init__(self, name: str, kind: str, help: str):
        self.name = name
        self.kind = kind
        self.help = help
        self.series: "Dict[Tuple[Tuple[str, str], ...], Any]" = {}


def _label_key(labels: Dict[str, str]) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _format_labels(key: Tuple[Tuple[str, str], ...]) -> str:
    if not key:
        return ""
    return "{" + ",".join(f'{k}="{v}"' for k, v in key) + "}"


class MetricsRegistry:
    """Per-runtime collection of named metric families.

    ``counter``/``gauge``/``histogram`` are get-or-create: calling twice
    with the same name and labels returns the same instance, so
    instrumented components can look series up at construction time and
    hold direct references (no registry work on the hot path).
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._lock = threading.Lock()
        self._families: Dict[str, _Family] = {}

    # -- get-or-create ------------------------------------------------------

    def _series(
        self,
        name: str,
        kind: str,
        help: str,
        labels: Dict[str, str],
        factory: Callable[[], Any],
    ) -> Any:
        if not self.enabled:
            return _NULL_METRIC
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(name, kind, help)
                self._families[name] = family
            elif family.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {family.kind}"
                )
            key = _label_key(labels)
            metric = family.series.get(key)
            if metric is None:
                metric = factory()
                family.series[key] = metric
            return metric

    def counter(self, name: str, help: str = "", **labels: str) -> Counter:
        return self._series(name, "counter", help, labels, Counter)

    def gauge(
        self,
        name: str,
        help: str = "",
        fn: Optional[Callable[[], float]] = None,
        **labels: str,
    ) -> Gauge:
        return self._series(name, "gauge", help, labels, lambda: Gauge(fn=fn))

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Optional[Sequence[float]] = None,
        **labels: str,
    ) -> Histogram:
        return self._series(
            name, "histogram", help, labels, lambda: Histogram(buckets=buckets)
        )

    # -- introspection ------------------------------------------------------

    def families(self) -> List[_Family]:
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    def series_names(self) -> List[str]:
        with self._lock:
            return sorted(self._families)

    # -- export -------------------------------------------------------------

    def to_prometheus_text(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: List[str] = []
        for family in self.families():
            if family.help:
                lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for key, metric in sorted(family.series.items()):
                if family.kind == "histogram":
                    cumulative = 0
                    counts = metric.bucket_counts()
                    for bound, count in zip(metric.buckets, counts):
                        cumulative += count
                        bucket_key = key + (("le", f"{bound:.6g}"),)
                        lines.append(
                            f"{family.name}_bucket{_format_labels(bucket_key)}"
                            f" {cumulative}"
                        )
                    cumulative += counts[-1]
                    inf_key = key + (("le", "+Inf"),)
                    lines.append(
                        f"{family.name}_bucket{_format_labels(inf_key)} {cumulative}"
                    )
                    lines.append(
                        f"{family.name}_sum{_format_labels(key)} {metric.sum:.9g}"
                    )
                    lines.append(
                        f"{family.name}_count{_format_labels(key)} {metric.count}"
                    )
                else:
                    value = metric.value
                    rendered = f"{value:.9g}" if math.isfinite(value) else "NaN"
                    lines.append(
                        f"{family.name}{_format_labels(key)} {rendered}"
                    )
        return "\n".join(lines) + "\n" if lines else ""

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly view: {name: {type, help, series: [{labels, ...}]}}.

        Non-finite values are mapped to None so the result survives
        ``json.dumps(..., allow_nan=False)``.
        """

        def clean(value: float) -> Optional[float]:
            return value if isinstance(value, (int, float)) and math.isfinite(
                value
            ) else None

        out: Dict[str, Any] = {}
        for family in self.families():
            rows = []
            for key, metric in sorted(family.series.items()):
                row: Dict[str, Any] = {"labels": dict(key)}
                if family.kind == "histogram":
                    row.update(
                        {k: clean(v) for k, v in metric.snapshot().items()}
                    )
                else:
                    row["value"] = clean(metric.value)
                rows.append(row)
            out[family.name] = {
                "type": family.kind,
                "help": family.help,
                "series": rows,
            }
        return out


NULL_REGISTRY = MetricsRegistry(enabled=False)
"""Shared disabled registry: the default for components constructed
outside a runtime (unit tests, standalone benchmarks)."""
