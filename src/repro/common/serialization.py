"""Serialization layer for the object store.

The paper stores objects in Apache Arrow format in a shared-memory store so
that workers on the same node read them zero-copy.  We reproduce the two
properties that matter to the system:

* **Out-of-band buffers.**  Large contiguous payloads (numpy arrays,
  ``bytes``, ``bytearray``, ``memoryview``) are carried as separate buffers
  next to a small pickled control message — the analogue of Arrow's
  data/metadata split.  Copying an object between node stores is then a
  buffer copy, not a re-encode.
* **Exact size accounting.**  The store's capacity and LRU eviction operate
  on the serialized size, so ``SerializedObject.total_bytes`` must be the
  real footprint.
"""

from __future__ import annotations

import io
import pickle
import threading
from typing import Any, Callable, Dict, List, Tuple, Type

_PROTOCOL = 5

# Custom serializer registry (Ray's register_serializer): lets
# applications store types that pickle cannot handle (simulator handles,
# objects holding locks/sockets) by providing their own encode/decode.
_custom_lock = threading.Lock()
_custom_serializers: Dict[Type, Tuple[Callable[[Any], Any], Callable[[Any], Any]]] = {}


def register_serializer(
    cls: Type,
    *,
    serializer: Callable[[Any], Any],
    deserializer: Callable[[Any], Any],
) -> None:
    """Register custom (de)serialization for ``cls``.

    ``serializer(obj)`` must return a picklable representation;
    ``deserializer(representation)`` must reconstruct the object.  Applies
    to exact-type matches anywhere inside a stored value.
    """
    with _custom_lock:
        _custom_serializers[cls] = (serializer, deserializer)


def deregister_serializer(cls: Type) -> None:
    with _custom_lock:
        _custom_serializers.pop(cls, None)


def _reconstruct_registered(cls: Type, payload: Any) -> Any:
    with _custom_lock:
        entry = _custom_serializers.get(cls)
    if entry is None:
        raise pickle.UnpicklingError(
            f"no serializer registered for {cls.__name__}; "
            "call repro.register_serializer in this process"
        )
    return entry[1](payload)


def _reduce_registered(obj: Any):
    serializer, _deserializer = _custom_serializers[type(obj)]
    # The class is pickled by reference; the user deserializer is looked
    # up from the registry at load time (so lambdas are fine).
    return (_reconstruct_registered, (type(obj), serializer(obj)))


class SerializedObject:
    """An immutable serialized value: a control payload plus raw buffers."""

    __slots__ = ("payload", "buffers", "total_bytes")

    def __init__(self, payload: bytes, buffers: List[bytes]):
        self.payload = payload
        self.buffers = buffers
        self.total_bytes = len(payload) + sum(len(b) for b in buffers)

    def copy(self) -> "SerializedObject":
        """A deep copy, modelling replication of the object to another store."""
        return SerializedObject(self.payload, [bytes(b) for b in self.buffers])

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SerializedObject({self.total_bytes} bytes, {len(self.buffers)} buffers)"


def serialize(value: Any) -> SerializedObject:
    """Serialize ``value`` using out-of-band buffers for large payloads."""
    buffers: List[pickle.PickleBuffer] = []
    with _custom_lock:
        dispatch = {
            cls: _reduce_registered for cls in _custom_serializers
        }
    if dispatch:
        sink = io.BytesIO()
        pickler = pickle.Pickler(
            sink, protocol=_PROTOCOL, buffer_callback=buffers.append
        )
        pickler.dispatch_table = dispatch
        pickler.dump(value)
        payload = sink.getvalue()
    else:
        payload = pickle.dumps(
            value, protocol=_PROTOCOL, buffer_callback=buffers.append
        )
    raw = [buf.raw().tobytes() for buf in buffers]
    return SerializedObject(payload, raw)


def deserialize(serialized: SerializedObject) -> Any:
    """Reconstruct the value from its payload and buffers."""
    return pickle.loads(serialized.payload, buffers=serialized.buffers)


def object_size(value: Any) -> int:
    """Serialized footprint of ``value`` in bytes."""
    return serialize(value).total_bytes
