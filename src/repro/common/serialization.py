"""Serialization layer for the object store.

The paper stores objects in Apache Arrow format in a shared-memory store so
that workers on the same node read them zero-copy.  We reproduce the two
properties that matter to the system:

* **Out-of-band buffers.**  Large contiguous payloads (numpy arrays,
  ``bytes``, ``bytearray``, ``memoryview``) are carried as separate buffers
  next to a small pickled control message — the analogue of Arrow's
  data/metadata split.  Copying an object between node stores is then a
  buffer copy, not a re-encode.
* **Zero-copy write path.**  :func:`serialize` keeps the out-of-band
  buffers as ``memoryview``\\ s over the producer's memory — no copy is made
  at serialization time.  The single copy on the write path happens when
  the object is *sealed* into store-owned memory (``SerializedObject.seal``,
  called by ``LocalObjectStore.put``) or striped into a destination store
  by the transfer service.  ``owned`` tracks whether the buffers are
  private to the object (safe to keep at rest) or still alias producer
  memory.
* **Exact size accounting.**  The store's capacity and LRU eviction operate
  on the serialized size, so ``SerializedObject.total_bytes`` must be the
  real footprint.  ``object_size`` computes it without materializing any
  buffer copies.
"""

from __future__ import annotations

import io
import pickle
import threading
from typing import Any, Callable, Dict, List, Optional, Tuple, Type, Union
from repro.common.lockwatch import make_lock

_PROTOCOL = 5

#: Anything the buffer protocol accepts as an out-of-band buffer.
BufferLike = Union[bytes, bytearray, memoryview]

# Custom serializer registry (Ray's register_serializer): lets
# applications store types that pickle cannot handle (simulator handles,
# objects holding locks/sockets) by providing their own encode/decode.
_custom_lock = make_lock("serialization._custom_lock")
_custom_serializers: Dict[Type, Tuple[Callable[[Any], Any], Callable[[Any], Any]]] = {}


def register_serializer(
    cls: Type,
    *,
    serializer: Callable[[Any], Any],
    deserializer: Callable[[Any], Any],
) -> None:
    """Register custom (de)serialization for ``cls``.

    ``serializer(obj)`` must return a picklable representation;
    ``deserializer(representation)`` must reconstruct the object.  Applies
    to exact-type matches anywhere inside a stored value.
    """
    with _custom_lock:
        _custom_serializers[cls] = (serializer, deserializer)


def deregister_serializer(cls: Type) -> None:
    with _custom_lock:
        _custom_serializers.pop(cls, None)


def _reconstruct_registered(cls: Type, payload: Any) -> Any:
    with _custom_lock:
        entry = _custom_serializers.get(cls)
    if entry is None:
        raise pickle.UnpicklingError(
            f"no serializer registered for {cls.__name__}; "
            "call repro.register_serializer in this process"
        )
    return entry[1](payload)


def _reduce_registered(obj: Any):
    serializer, _deserializer = _custom_serializers[type(obj)]
    # The class is pickled by reference; the user deserializer is looked
    # up from the registry at load time (so lambdas are fine).
    return (_reconstruct_registered, (type(obj), serializer(obj)))


def buffer_nbytes(buf: BufferLike) -> int:
    """Byte length of a buffer regardless of its concrete type."""
    if isinstance(buf, memoryview):
        return buf.nbytes
    return len(buf)


class SerializedObject:
    """An immutable serialized value: a control payload plus raw buffers.

    ``owned=False`` means the buffers may alias producer memory (the
    zero-copy output of :func:`serialize`); ``owned=True`` means the
    buffers are private to this object and safe to keep at rest in a
    store.
    """

    __slots__ = ("payload", "buffers", "total_bytes", "owned")

    def __init__(
        self, payload: bytes, buffers: List[BufferLike], owned: bool = False
    ):
        self.payload = payload
        self.buffers = buffers
        self.total_bytes = len(payload) + sum(buffer_nbytes(b) for b in buffers)
        self.owned = owned

    def seal(self) -> "SerializedObject":
        """Copy any producer-aliased buffers into private memory.

        The single copy of the local write path: an already-owned object is
        returned unchanged, so transfer-produced copies are never copied
        again.
        """
        if self.owned:
            return self
        return SerializedObject(
            self.payload, [bytes(b) for b in self.buffers], owned=True
        )

    def copy(self) -> "SerializedObject":
        """A deep copy, modelling replication of the object to another store."""
        return SerializedObject(
            self.payload, [bytes(b) for b in self.buffers], owned=True
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SerializedObject({self.total_bytes} bytes, {len(self.buffers)} buffers)"


def _dump(
    value: Any, buffer_callback: Callable[[pickle.PickleBuffer], None]
) -> bytes:
    """Pickle ``value`` with out-of-band buffers routed to ``buffer_callback``,
    honouring the custom serializer registry."""
    with _custom_lock:
        dispatch = {cls: _reduce_registered for cls in _custom_serializers}
    if dispatch:
        sink = io.BytesIO()
        pickler = pickle.Pickler(
            sink, protocol=_PROTOCOL, buffer_callback=buffer_callback
        )
        pickler.dispatch_table = dispatch
        pickler.dump(value)
        return sink.getvalue()
    return pickle.dumps(value, protocol=_PROTOCOL, buffer_callback=buffer_callback)


def serialize(value: Any) -> SerializedObject:
    """Serialize ``value`` using out-of-band buffers for large payloads.

    Zero-copy: the returned object's buffers are ``memoryview``\\ s over the
    producer's memory (``owned=False``).  Storing it at rest requires
    :meth:`SerializedObject.seal` (one copy), which ``LocalObjectStore.put``
    performs.
    """
    buffers: List[pickle.PickleBuffer] = []
    payload = _dump(value, buffers.append)
    raw: List[BufferLike] = [buf.raw() for buf in buffers]
    return SerializedObject(payload, raw, owned=not raw)


def deserialize(serialized: SerializedObject) -> Any:
    """Reconstruct the value from its payload and buffers."""
    return pickle.loads(serialized.payload, buffers=serialized.buffers)


def object_size(value: Any) -> int:
    """Serialized footprint of ``value`` in bytes.

    Computed from the pickle stream length plus raw out-of-band buffer
    lengths — no buffer is ever materialized or copied.
    """
    buffer_bytes = 0

    def count(buf: pickle.PickleBuffer) -> None:
        nonlocal buffer_bytes
        buffer_bytes += buf.raw().nbytes

    payload = _dump(value, count)
    return len(payload) + buffer_bytes
