"""Identifier types for objects, tasks, actors, functions, and nodes.

Ray identifies every entity in the system with a fixed-width binary ID.  The
GCS shards its tables by these IDs, and object IDs are *derived
deterministically* from the ID of the task that produces them — this is what
makes lineage-based reconstruction possible: when an object is lost, the
system re-executes the producing task, which re-creates an object with the
same ID.

We follow the same scheme: 20-byte IDs, with object IDs computed as
``sha1(task_id || return_index)``.
"""

from __future__ import annotations

import hashlib
import os
import threading
from typing import Optional
from repro.common.lockwatch import make_lock

ID_LENGTH = 20

_counter_lock = make_lock("ids._counter_lock")
_counter = 0

# Random salts are drawn from a slab refilled once per _SLAB_IDS ids: one
# os.urandom syscall amortized over the slab instead of paid per ID.  The
# monotonic counter (leading 8 bytes) still guarantees process-uniqueness;
# the random tail keeps shard_index (trailing 4 bytes) well spread.
_SLAB_IDS = 1024
_SALT_BYTES = ID_LENGTH - 8
_salt_slab = b""
_salt_offset = 0


def _unique_bytes() -> bytes:
    """Return 20 process-unique bytes (monotonic counter + random salt)."""
    global _counter, _salt_slab, _salt_offset
    with _counter_lock:
        _counter += 1
        n = _counter
        if _salt_offset >= len(_salt_slab):
            _salt_slab = os.urandom(_SALT_BYTES * _SLAB_IDS)
            _salt_offset = 0
        salt = _salt_slab[_salt_offset:_salt_offset + _SALT_BYTES]
        _salt_offset += _SALT_BYTES
    return n.to_bytes(8, "little") + salt


class BaseID:
    """A fixed-width, hashable, immutable binary identifier."""

    __slots__ = ("_binary", "_hex", "_hash")

    def __init__(self, binary: bytes):
        if not isinstance(binary, bytes) or len(binary) != ID_LENGTH:
            raise ValueError(
                f"{type(self).__name__} requires {ID_LENGTH} bytes, "
                f"got {binary!r}"
            )
        object.__setattr__(self, "_binary", binary)
        object.__setattr__(self, "_hex", None)
        object.__setattr__(self, "_hash", None)

    def __setattr__(self, name, value):  # pragma: no cover - defensive
        raise AttributeError(f"{type(self).__name__} is immutable")

    def __reduce__(self):
        # Needed because __setattr__ is blocked: pickle must reconstruct
        # through __init__ rather than by setting state.
        return (type(self), (self._binary,))

    @classmethod
    def from_random(cls) -> "BaseID":
        return cls(_unique_bytes())

    @classmethod
    def from_seed(cls, seed: str) -> "BaseID":
        """Deterministic ID from a string seed (used in tests and the sim)."""
        return cls(hashlib.sha1(seed.encode("utf-8")).digest())

    @classmethod
    def nil(cls) -> "BaseID":
        return cls(b"\x00" * ID_LENGTH)

    def is_nil(self) -> bool:
        return self._binary == b"\x00" * ID_LENGTH

    def binary(self) -> bytes:
        return self._binary

    def hex(self) -> str:
        # Cached: trace events and log lines format the same ID repeatedly,
        # so the hot submit path must not re-encode it per event.
        value = self._hex
        if value is None:
            value = self._binary.hex()
            object.__setattr__(self, "_hex", value)
        return value

    def short(self) -> str:
        """The 8-char hex prefix used in trace events and log lines."""
        return self.hex()[:8]

    def __hash__(self) -> int:
        # Cached: IDs key every hot-path dict (task tables, stores, shard
        # routing), so one ID is hashed dozens of times per task.
        value = self._hash
        if value is None:
            value = hash((type(self).__name__, self._binary))
            object.__setattr__(self, "_hash", value)
        return value

    def __eq__(self, other) -> bool:
        return type(other) is type(self) and other._binary == self._binary

    def __lt__(self, other) -> bool:
        if type(other) is not type(self):
            return NotImplemented
        return self._binary < other._binary

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.hex()[:12]})"


class TaskID(BaseID):
    __slots__ = ()


class NodeID(BaseID):
    __slots__ = ()


class FunctionID(BaseID):
    __slots__ = ()

    @classmethod
    def from_function(cls, module: str, qualname: str) -> "FunctionID":
        return cls.from_seed(f"func:{module}.{qualname}")


class ActorID(BaseID):
    __slots__ = ()


class ObjectID(BaseID):
    """ID of an immutable object; derived from its producing task.

    ``ObjectID.for_task_return(task_id, i)`` is a pure function so that a
    re-executed task writes its outputs under the *same* IDs — the heart of
    lineage reconstruction (paper Section 4.2.3).
    """

    __slots__ = ()

    @classmethod
    def for_task_return(cls, task_id: TaskID, index: int) -> "ObjectID":
        if index < 0:
            raise ValueError("return index must be non-negative")
        digest = hashlib.sha1(
            task_id.binary() + index.to_bytes(4, "little")
        ).digest()
        return cls(digest)

    @classmethod
    def for_put(cls, task_id: TaskID, put_index: int) -> "ObjectID":
        """ID for an object created via ``put`` inside task ``task_id``."""
        digest = hashlib.sha1(
            b"put:" + task_id.binary() + put_index.to_bytes(4, "little")
        ).digest()
        return cls(digest)


def shard_index(entity_id: BaseID, num_shards: int) -> int:
    """Map an ID onto one of ``num_shards`` GCS shards.

    Uses the trailing bytes of the ID so that object IDs derived from the
    same task spread across shards.
    """
    if num_shards <= 0:
        raise ValueError("num_shards must be positive")
    return int.from_bytes(entity_id.binary()[-4:], "little") % num_shards


def deterministic_task_id(
    parent: TaskID, submission_index: int, salt: Optional[str] = None
) -> TaskID:
    """Task ID derived from the parent task and the submission order.

    Replaying a driver or worker therefore regenerates identical task IDs,
    which keeps lineage replay idempotent.
    """
    payload = parent.binary() + submission_index.to_bytes(8, "little")
    if salt:
        payload += salt.encode("utf-8")
    return TaskID(hashlib.sha1(payload).digest())
