"""Identifier types for objects, tasks, actors, functions, and nodes.

Ray identifies every entity in the system with a fixed-width binary ID.  The
GCS shards its tables by these IDs, and object IDs are *derived
deterministically* from the ID of the task that produces them — this is what
makes lineage-based reconstruction possible: when an object is lost, the
system re-executes the producing task, which re-creates an object with the
same ID.

We follow the same scheme: 20-byte IDs, with object IDs computed as
``sha1(task_id || return_index)``.
"""

from __future__ import annotations

import hashlib
import os
import threading
from typing import Optional
from repro.common.lockwatch import make_lock

ID_LENGTH = 20

_counter_lock = make_lock("ids._counter_lock")
_counter = 0


def _unique_bytes() -> bytes:
    """Return 20 process-unique bytes (monotonic counter + random salt)."""
    global _counter
    with _counter_lock:
        _counter += 1
        n = _counter
    return hashlib.sha1(n.to_bytes(8, "little") + os.urandom(8)).digest()


class BaseID:
    """A fixed-width, hashable, immutable binary identifier."""

    __slots__ = ("_binary",)

    def __init__(self, binary: bytes):
        if not isinstance(binary, bytes) or len(binary) != ID_LENGTH:
            raise ValueError(
                f"{type(self).__name__} requires {ID_LENGTH} bytes, "
                f"got {binary!r}"
            )
        object.__setattr__(self, "_binary", binary)

    def __setattr__(self, name, value):  # pragma: no cover - defensive
        raise AttributeError(f"{type(self).__name__} is immutable")

    def __reduce__(self):
        # Needed because __setattr__ is blocked: pickle must reconstruct
        # through __init__ rather than by setting state.
        return (type(self), (self._binary,))

    @classmethod
    def from_random(cls) -> "BaseID":
        return cls(_unique_bytes())

    @classmethod
    def from_seed(cls, seed: str) -> "BaseID":
        """Deterministic ID from a string seed (used in tests and the sim)."""
        return cls(hashlib.sha1(seed.encode("utf-8")).digest())

    @classmethod
    def nil(cls) -> "BaseID":
        return cls(b"\x00" * ID_LENGTH)

    def is_nil(self) -> bool:
        return self._binary == b"\x00" * ID_LENGTH

    def binary(self) -> bytes:
        return self._binary

    def hex(self) -> str:
        return self._binary.hex()

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._binary))

    def __eq__(self, other) -> bool:
        return type(other) is type(self) and other._binary == self._binary

    def __lt__(self, other) -> bool:
        if type(other) is not type(self):
            return NotImplemented
        return self._binary < other._binary

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.hex()[:12]})"


class TaskID(BaseID):
    __slots__ = ()


class NodeID(BaseID):
    __slots__ = ()


class FunctionID(BaseID):
    __slots__ = ()

    @classmethod
    def from_function(cls, module: str, qualname: str) -> "FunctionID":
        return cls.from_seed(f"func:{module}.{qualname}")


class ActorID(BaseID):
    __slots__ = ()


class ObjectID(BaseID):
    """ID of an immutable object; derived from its producing task.

    ``ObjectID.for_task_return(task_id, i)`` is a pure function so that a
    re-executed task writes its outputs under the *same* IDs — the heart of
    lineage reconstruction (paper Section 4.2.3).
    """

    __slots__ = ()

    @classmethod
    def for_task_return(cls, task_id: TaskID, index: int) -> "ObjectID":
        if index < 0:
            raise ValueError("return index must be non-negative")
        digest = hashlib.sha1(
            task_id.binary() + index.to_bytes(4, "little")
        ).digest()
        return cls(digest)

    @classmethod
    def for_put(cls, task_id: TaskID, put_index: int) -> "ObjectID":
        """ID for an object created via ``put`` inside task ``task_id``."""
        digest = hashlib.sha1(
            b"put:" + task_id.binary() + put_index.to_bytes(4, "little")
        ).digest()
        return cls(digest)


def shard_index(entity_id: BaseID, num_shards: int) -> int:
    """Map an ID onto one of ``num_shards`` GCS shards.

    Uses the trailing bytes of the ID so that object IDs derived from the
    same task spread across shards.
    """
    if num_shards <= 0:
        raise ValueError("num_shards must be positive")
    return int.from_bytes(entity_id.binary()[-4:], "little") % num_shards


def deterministic_task_id(
    parent: TaskID, submission_index: int, salt: Optional[str] = None
) -> TaskID:
    """Task ID derived from the parent task and the submission order.

    Replaying a driver or worker therefore regenerates identical task IDs,
    which keeps lineage replay idempotent.
    """
    payload = parent.binary() + submission_index.to_bytes(8, "little")
    if salt:
        payload += salt.encode("utf-8")
    return TaskID(hashlib.sha1(payload).digest())
