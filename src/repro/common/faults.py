"""Deterministic fault injection for the control plane.

The paper's robustness results (§4.2.3, Figures 10-11) are about what the
system does *while* components fail.  ``kill_node`` lets a test fail a node
by hand, but reproducing a figure needs failures that arrive mid-run, at a
precise point in the workload, identically on every run.  This module
provides that: a seeded :class:`FaultSchedule` whose planned faults fire at
**task-count**, **placement-count**, **chain-write-count**, or wall-clock
triggers, plus probabilistic (but seed-deterministic) transfer-chunk drops
and delays.

The runtime threads narrow hooks through its hot layers (the same
null-object pattern as :mod:`repro.common.metrics`):

* ``on_task_finished()`` — every task/method completion (runtime).
* ``on_place(node_id)`` — every local-scheduler placement, *before* the
  liveness check, so a fired kill exercises the dead-node spillback path.
* ``on_chain_write(shard_index, chain)`` — every GCS chain write; a fired
  fault kills a chain member so the write itself discovers the failure and
  reconfigures (Figure 10a).
* ``chunk_fault(object_id, chunk_index)`` — every transfer stripe; returns
  ``"drop"`` (the copy restarts, like a lost-and-retransmitted segment) or
  ``"delay"`` (the stripe stalls).

All hooks are no-ops on :data:`NULL_FAULTS`, and every call site guards on
``faults.enabled`` so the disabled path costs one attribute read.

Determinism contract: the canonical :meth:`FaultSchedule.event_log`
contains no wall-clock values.  Planned faults with count-based triggers
and chunk decisions (a pure hash of ``(seed, object_id, chunk_index)``)
produce an identical log whenever the schedule receives the same hook-call
sequence — and two runs of a sequential workload do exactly that.
Wall-clock (``after_seconds``) triggers are provided for long benches but
excluded from the determinism guarantee; prefer count triggers.
"""

from __future__ import annotations

import hashlib
import random
import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, List, Optional, Sequence, Set, Tuple
from repro.common.lockwatch import make_lock

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.runtime import Runtime
    from repro.gcs.chain import ReplicatedChain

KILL_NODE = "kill_node"
RESTART_NODE = "restart_node"
KILL_CHAIN_MEMBER = "kill_chain_member"

_ACTION_KINDS = (KILL_NODE, RESTART_NODE, KILL_CHAIN_MEMBER)

# Target index meaning "whichever entity triggered the hook" (the node
# currently placing a task / the chain currently being written).
TARGET_SELF = -1


@dataclass(frozen=True)
class FaultTrigger:
    """When a planned fault fires.  Exactly one field may be set."""

    after_tasks: Optional[int] = None
    after_seconds: Optional[float] = None
    at_placement: Optional[int] = None
    after_chain_writes: Optional[int] = None

    def __post_init__(self):
        set_fields = [
            v
            for v in (
                self.after_tasks,
                self.after_seconds,
                self.at_placement,
                self.after_chain_writes,
            )
            if v is not None
        ]
        if len(set_fields) != 1:
            raise ValueError("exactly one trigger field must be set")

    def describe(self) -> str:
        if self.after_tasks is not None:
            return f"tasks={self.after_tasks}"
        if self.at_placement is not None:
            return f"placement={self.at_placement}"
        if self.after_chain_writes is not None:
            return f"chain_writes={self.after_chain_writes}"
        return f"seconds={self.after_seconds}"


@dataclass(frozen=True)
class FaultAction:
    """What a planned fault does when it fires.

    ``target`` is a node index (in cluster join order) for node faults, or
    a GCS shard index for chain faults; :data:`TARGET_SELF` means the
    entity whose hook call fired the trigger.
    """

    kind: str
    target: int = 0
    member: int = 0  # chain member index (0 = head)

    def __post_init__(self):
        if self.kind not in _ACTION_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")


@dataclass(frozen=True)
class PlannedFault:
    trigger: FaultTrigger
    action: FaultAction


class NullFaultInjector:
    """Shared no-op injector installed when fault injection is disabled."""

    enabled = False

    def bind(self, runtime: "Runtime") -> None:
        pass

    def on_task_finished(self) -> None:
        pass

    def on_place(self, node_id: Any) -> None:
        pass

    def on_chain_write(self, shard_index: int, chain: Any = None) -> None:
        pass

    def chunk_fault(self, object_id: Any, chunk_index: int) -> Optional[str]:
        return None

    def poll(self) -> None:
        pass

    def event_log(self) -> Tuple[Tuple[Any, ...], ...]:
        return ()


NULL_FAULTS = NullFaultInjector()


class FaultSchedule(NullFaultInjector):
    """A seeded, replayable schedule of control-plane faults.

    Pass one to ``repro.init(fault_schedule=...)``; the runtime binds it
    and threads the hooks.  A schedule is single-use: construct a fresh one
    (same seed and arguments) to replay the identical fault sequence.
    """

    enabled = True

    def __init__(
        self,
        seed: int = 0,
        faults: Sequence[PlannedFault] = (),
        chunk_drop_probability: float = 0.0,
        chunk_delay_probability: float = 0.0,
        chunk_delay_seconds: float = 0.002,
        max_chunk_faults: int = 64,
    ):
        if not 0.0 <= chunk_drop_probability <= 1.0:
            raise ValueError("chunk_drop_probability must be in [0, 1]")
        if not 0.0 <= chunk_delay_probability <= 1.0:
            raise ValueError("chunk_delay_probability must be in [0, 1]")
        self.seed = seed
        self.chunk_drop_probability = chunk_drop_probability
        self.chunk_delay_probability = chunk_delay_probability
        self.chunk_delay_seconds = chunk_delay_seconds
        self.max_chunk_faults = max_chunk_faults

        self._lock = make_lock("FaultSchedule._lock")
        self._pending: List[Tuple[int, PlannedFault]] = list(enumerate(faults))
        self._log: List[Tuple[Any, ...]] = []
        self._tasks = 0
        self._placements = 0
        self._chain_writes = 0
        self._chunk_faults = 0
        self._dropped_chunks: Set[Tuple[Any, int]] = set()
        self._runtime: Optional["Runtime"] = None
        self._started: Optional[float] = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def random(
        cls,
        seed: int,
        num_nodes: int = 4,
        kills: int = 1,
        restart: bool = True,
        first_kill_after: int = 40,
        kill_gap: int = 30,
        restart_delay: int = 20,
        chain_kills: int = 0,
        num_shards: int = 4,
        **chunk_kwargs: Any,
    ) -> "FaultSchedule":
        """A deterministic staggered kill/restart schedule from one seed.

        Node 0 (the driver's home) is never a kill target, so the cluster
        always keeps a live driver node.
        """
        rng = random.Random(seed)
        faults: List[PlannedFault] = []
        at = first_kill_after
        for _ in range(max(0, kills)):
            at += rng.randrange(0, max(1, kill_gap))
            target = rng.randrange(1, max(2, num_nodes))
            faults.append(
                PlannedFault(
                    FaultTrigger(after_tasks=at),
                    FaultAction(KILL_NODE, target=target),
                )
            )
            if restart:
                faults.append(
                    PlannedFault(
                        FaultTrigger(
                            after_tasks=at + 1 + rng.randrange(0, max(1, restart_delay))
                        ),
                        FaultAction(RESTART_NODE, target=target),
                    )
                )
            at += kill_gap
        for _ in range(max(0, chain_kills)):
            at += rng.randrange(0, max(1, kill_gap))
            faults.append(
                PlannedFault(
                    FaultTrigger(after_tasks=at),
                    FaultAction(
                        KILL_CHAIN_MEMBER,
                        target=rng.randrange(num_shards),
                        member=0,
                    ),
                )
            )
        return cls(seed=seed, faults=faults, **chunk_kwargs)

    # ------------------------------------------------------------------
    # Binding and introspection
    # ------------------------------------------------------------------

    def bind(self, runtime: "Runtime") -> None:
        with self._lock:
            if self._runtime is not None and self._runtime is not runtime:
                raise RuntimeError(
                    "a FaultSchedule is single-use; build a fresh one per run"
                )
            self._runtime = runtime
            if self._started is None:
                self._started = time.monotonic()

    def event_log(self) -> Tuple[Tuple[Any, ...], ...]:
        """The canonical injected-fault log (no wall-clock values): the
        replay-determinism artifact compared across same-seed runs."""
        with self._lock:
            return tuple(self._log)

    def signature(self) -> str:
        """Stable digest of the event log, for quick replay comparison."""
        return hashlib.sha1(repr(self.event_log()).encode()).hexdigest()

    def pending_count(self) -> int:
        with self._lock:
            return len(self._pending)

    # ------------------------------------------------------------------
    # Hooks (called by the instrumented layers)
    # ------------------------------------------------------------------

    def on_task_finished(self) -> None:
        with self._lock:
            self._tasks += 1
            due = self._collect_due_locked("tasks")
        self._apply_all(due)

    def on_place(self, node_id: Any) -> None:
        with self._lock:
            self._placements += 1
            due = self._collect_due_locked("placement")
        self._apply_all(due, context_node_id=node_id)

    def on_chain_write(self, shard_index: int, chain: Any = None) -> None:
        with self._lock:
            self._chain_writes += 1
            due = self._collect_due_locked("chain")
        self._apply_all(due, context_shard=shard_index, context_chain=chain)

    def poll(self) -> None:
        """Fire any due wall-clock triggers (benches call this between
        measurement windows; count triggers need no polling)."""
        with self._lock:
            due = self._collect_due_locked("time")
        self._apply_all(due)

    def chunk_fault(self, object_id: Any, chunk_index: int) -> Optional[str]:
        """Deterministic per-stripe decision: ``"drop"``, ``"delay"``, or
        None.  A pure hash of (seed, object, chunk) picks the outcome, so
        the same transfer makes the same decision on every run; each chunk
        drops at most once (the retried copy goes through), and a global
        budget bounds total injected chunk faults.
        """
        p_drop = self.chunk_drop_probability
        p_delay = self.chunk_delay_probability
        if p_drop <= 0.0 and p_delay <= 0.0:
            return None
        digest = hashlib.sha1(
            f"{self.seed}:{object_id.hex()}:{chunk_index}".encode()
        ).digest()
        draw = int.from_bytes(digest[:8], "big") / 2**64
        with self._lock:
            if self._chunk_faults >= self.max_chunk_faults:
                return None
            if draw < p_drop:
                key = (object_id, chunk_index)
                if key in self._dropped_chunks:
                    return None
                self._dropped_chunks.add(key)
                self._chunk_faults += 1
                self._log.append(
                    ("chunk", "drop", object_id.hex()[:8], chunk_index)
                )
                return "drop"
            if draw < p_drop + p_delay:
                self._chunk_faults += 1
                self._log.append(
                    ("chunk", "delay", object_id.hex()[:8], chunk_index)
                )
                return "delay"
        return None

    # ------------------------------------------------------------------
    # Firing
    # ------------------------------------------------------------------

    def _collect_due_locked(self, source: str) -> List[Tuple[int, PlannedFault]]:
        """Due planned faults for one hook kind (lock held).

        A count trigger fires only from the hook that advances its counter
        (wall-clock triggers fire from any hook), so a ``TARGET_SELF``
        action always receives the context it names and the firing site is
        independent of cross-thread hook interleaving.
        """
        if not self._pending:
            return []
        elapsed = (
            time.monotonic() - self._started if self._started is not None else 0.0
        )
        due: List[Tuple[int, PlannedFault]] = []
        remaining: List[Tuple[int, PlannedFault]] = []
        for index, fault in self._pending:
            t = fault.trigger
            fired = (t.after_seconds is not None and elapsed >= t.after_seconds) or (
                source == "tasks"
                and t.after_tasks is not None
                and self._tasks >= t.after_tasks
            ) or (
                source == "placement"
                and t.at_placement is not None
                and self._placements >= t.at_placement
            ) or (
                source == "chain"
                and t.after_chain_writes is not None
                and self._chain_writes >= t.after_chain_writes
            )
            (due if fired else remaining).append((index, fault))
        self._pending = remaining
        return due

    def _apply_all(
        self,
        due: Sequence[Tuple[int, PlannedFault]],
        context_node_id: Any = None,
        context_shard: Optional[int] = None,
        context_chain: Any = None,
    ) -> None:
        for index, fault in due:
            self._apply(index, fault, context_node_id, context_shard, context_chain)

    @staticmethod
    def _mirror_to_gcs(runtime: "Runtime", index: int, fault: PlannedFault,
                       node: Any) -> None:
        """Publish an applied node-level fault into the GCS event log.

        This feeds the dashboard's merged ``/events`` timeline
        (``fault_injected`` category).  The determinism contract is
        untouched: ``--verify`` compares :meth:`event_log`, this schedule's
        own wall-clock-free record.  Only node-level faults are mirrored —
        chain-member kills fire from inside GCS chain write paths, where a
        nested event append could recurse into the chain being mutated.
        Runs outside the schedule's internal mutex.
        """
        runtime.gcs.record_event(
            "fault_injected",
            index=index,
            kind=fault.action.kind,
            trigger=fault.trigger.describe(),
            node=node.node_id.hex()[:8],
        )

    def _record(self, index: int, fault: PlannedFault, outcome: str) -> None:
        with self._lock:
            self._log.append(
                (
                    "planned",
                    index,
                    fault.trigger.describe(),
                    fault.action.kind,
                    fault.action.target,
                    fault.action.member,
                    outcome,
                )
            )

    def _apply(
        self,
        index: int,
        fault: PlannedFault,
        context_node_id: Any,
        context_shard: Optional[int],
        context_chain: Any,
    ) -> None:
        """Execute one planned fault.  Unbound schedules (dry runs / the
        determinism tests) log the decision without touching a cluster.
        Applying never raises into the instrumented layer: an injection
        error becomes a ``"failed"`` outcome."""
        runtime = self._runtime
        action = fault.action
        if runtime is None:
            self._record(index, fault, "dry_run")
            return
        try:
            if action.kind == KILL_NODE:
                node = self._resolve_node(runtime, action.target, context_node_id)
                if node is None or not node.alive or len(runtime.live_nodes()) <= 1:
                    self._record(index, fault, "skipped")
                    return
                self._record(index, fault, "applied")
                self._mirror_to_gcs(runtime, index, fault, node)
                runtime.kill_node(node.node_id)
            elif action.kind == RESTART_NODE:
                node = self._resolve_node(runtime, action.target, context_node_id)
                if node is None or node.alive:
                    self._record(index, fault, "skipped")
                    return
                self._record(index, fault, "applied")
                self._mirror_to_gcs(runtime, index, fault, node)
                runtime.restart_node(node.node_id)
            else:  # KILL_CHAIN_MEMBER
                chain = self._resolve_chain(runtime, action.target, context_chain)
                if chain is None or chain.chain_length() <= 1:
                    self._record(index, fault, "skipped")
                    return
                self._record(index, fault, "applied")
                chain.kill_member(action.member % chain.chain_length())
        except Exception:  # noqa: BLE001 - injection must not crash workers
            self._record(index, fault, "failed")

    @staticmethod
    def _resolve_node(runtime: "Runtime", target: int, context_node_id: Any):
        if target == TARGET_SELF:
            if context_node_id is None:
                return None
            return runtime.node(context_node_id)
        return runtime.node_by_index(target)

    @staticmethod
    def _resolve_chain(
        runtime: "Runtime", target: int, context_chain: Any
    ) -> Optional["ReplicatedChain"]:
        if target == TARGET_SELF:
            return context_chain
        shards = runtime.gcs.kv.shards
        if not shards:
            return None
        return shards[target % len(shards)]
