"""Runtime lock-order witness (dynamic companion to the static analyzer).

The static rules in :mod:`repro.tools.analysis` reason about lock discipline
from source text; this module watches the locks *run*.  When enabled it wraps
every lock created through :func:`make_lock` / :func:`make_rlock` /
:func:`make_condition` in a thin proxy that records, per thread, the order in
which named locks are acquired.  The observations feed three detectors:

* **lock-order inversions** — acquiring ``B`` while holding ``A`` adds the
  edge ``A -> B`` to a global acquisition-order graph; a path ``B -> ... -> A``
  already in the graph means two threads can deadlock.  Detection is
  graph-based, so a single-threaded test that merely *exercises* both orders
  is enough to catch the hazard — no actual deadlock required.
* **long holds** — a lock held longer than ``long_hold_seconds`` (time spent
  blocked in ``Condition.wait`` is subtracted, so the event-layer idiom of
  waiting on the held condition does not count).
* **contention** — an acquire that could not be satisfied immediately.

Like :mod:`repro.common.faults` and :mod:`repro.common.metrics`, the disabled
path is a null object — better, in fact: with no watch installed the
factories return the plain :mod:`threading` primitives, so production code
pays nothing, not even an attribute hop.

Enable with the ``REPRO_LOCKWATCH`` environment variable (any value except
``""``/``0``), or programmatically::

    watch = LockWatch()
    install(watch)
    try:
        ...  # locks created via make_lock() are now instrumented
    finally:
        uninstall()
    assert not watch.inversions()

Metrics: call :meth:`LockWatch.bind_metrics` with a
:class:`repro.common.metrics.MetricsRegistry` (duck-typed — anything with
``histogram``/``counter``) to export ``lock_hold_seconds`` and
``lock_contention_total``.  ``Runtime`` does this automatically when a watch
is installed.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Dict, List, Optional, Set, Tuple

__all__ = [
    "LockWatch",
    "active",
    "install",
    "uninstall",
    "make_lock",
    "make_rlock",
    "make_condition",
    "make_thread",
]


def _env_enabled() -> bool:
    value = os.environ.get("REPRO_LOCKWATCH", "")
    return value not in ("", "0", "false", "no")


class LockWatch:
    """Collects acquisition-order, hold-time and contention observations.

    Lock *names* (not instances) are the graph nodes: every lock a class
    creates under the same attribute shares one name (``"ActorState.cond"``),
    which is exactly the granularity the ordering discipline is defined at.
    Reentrant re-acquisition (RLock already on the thread's stack) adds no
    edge.
    """

    enabled = True

    def __init__(self, long_hold_seconds: float = 0.25, max_records: int = 200):
        self.long_hold_seconds = long_hold_seconds
        self.max_records = max_records
        # Internal lock guarding the graph and record lists.  Deliberately a
        # raw primitive: the watch must never watch itself.
        self._lock = threading.Lock()
        self._edges: Dict[str, Set[str]] = {}
        self._edge_witness: Dict[Tuple[str, str], str] = {}
        self._inversion_records: List[dict] = []
        self._inversion_keys: Set[Tuple[str, ...]] = set()
        self._long_holds: List[dict] = []
        self._contention: Dict[str, int] = {}
        self._hold_totals: Dict[str, float] = {}
        self._acquire_totals: Dict[str, int] = {}
        self._tls = threading.local()
        self._m_hold = None
        self._m_contention = None

    # -- factories ---------------------------------------------------------

    def lock(self, name: str) -> "_WatchedLock":
        return _WatchedLock(name, self, threading.Lock())

    def rlock(self, name: str) -> "_WatchedLock":
        return _WatchedLock(name, self, threading.RLock(), reentrant=True)

    def condition(self, name: str) -> "_WatchedCondition":
        return _WatchedCondition(name, self)

    # -- metrics -----------------------------------------------------------

    def bind_metrics(self, registry) -> None:
        """Export hold/contention observations through ``registry``.

        Duck-typed on purpose: importing :mod:`repro.common.metrics` here
        would create a cycle once that module routes its own locks through
        :func:`make_lock`.
        """
        self._m_hold = registry.histogram(
            "lock_hold_seconds", "Time a watched lock was held"
        )
        self._m_contention = registry.counter(
            "lock_contention_total", "Acquires that had to wait"
        )

    # -- per-thread stack --------------------------------------------------

    def _stack(self) -> List[dict]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = []
            self._tls.stack = stack
        return stack

    # -- wrapper callbacks -------------------------------------------------

    def note_contention(self, name: str) -> None:
        with self._lock:
            self._contention[name] = self._contention.get(name, 0) + 1
        if self._m_contention is not None:
            self._m_contention.inc()

    def note_acquired(self, name: str) -> None:
        stack = self._stack()
        reentrant = any(entry["name"] == name for entry in stack)
        holder = stack[-1]["name"] if stack else None
        stack.append(
            {"name": name, "t0": time.monotonic(), "waited": 0.0}
        )
        if reentrant or holder is None or holder == name:
            return
        thread = threading.current_thread().name
        with self._lock:
            self._acquire_totals[name] = self._acquire_totals.get(name, 0) + 1
            targets = self._edges.setdefault(holder, set())
            if name in targets:
                return
            targets.add(name)
            self._edge_witness[(holder, name)] = thread
            cycle = self._find_path(name, holder)
            if cycle is not None:
                self._record_inversion([holder] + cycle)

    def note_released(self, name: str) -> None:
        stack = self._stack()
        for index in range(len(stack) - 1, -1, -1):
            if stack[index]["name"] == name:
                entry = stack.pop(index)
                break
        else:
            return
        held = time.monotonic() - entry["t0"] - entry["waited"]
        if self._m_hold is not None:
            self._m_hold.observe(held)
        with self._lock:
            self._hold_totals[name] = self._hold_totals.get(name, 0.0) + held
            if (
                held > self.long_hold_seconds
                and len(self._long_holds) < self.max_records
            ):
                self._long_holds.append(
                    {
                        "lock": name,
                        "held_seconds": held,
                        "thread": threading.current_thread().name,
                    }
                )

    def note_wait(self, name: str, waited: float) -> None:
        """Time spent blocked in ``Condition.wait`` does not count as holding."""
        stack = self._stack()
        for index in range(len(stack) - 1, -1, -1):
            if stack[index]["name"] == name:
                stack[index]["waited"] += waited
                return

    # -- graph -------------------------------------------------------------

    def _find_path(self, start: str, goal: str) -> Optional[List[str]]:
        """DFS for a path ``start -> ... -> goal`` (lock held by caller)."""
        seen = set()
        frontier: List[Tuple[str, List[str]]] = [(start, [start])]
        while frontier:
            node, path = frontier.pop()
            if node == goal:
                return path
            if node in seen:
                continue
            seen.add(node)
            for nxt in self._edges.get(node, ()):
                if nxt not in seen:
                    frontier.append((nxt, path + [nxt]))
        return None

    def _record_inversion(self, cycle: List[str]) -> None:
        key = tuple(sorted(set(cycle)))
        if key in self._inversion_keys:
            return
        self._inversion_keys.add(key)
        witnesses = {
            f"{a}->{b}": self._edge_witness.get((a, b), "?")
            for a, b in zip(cycle, cycle[1:] + cycle[:1])
            if (a, b) in self._edge_witness
        }
        self._inversion_records.append(
            {"cycle": list(cycle), "witness_threads": witnesses}
        )

    # -- reporting ---------------------------------------------------------

    def inversions(self) -> List[dict]:
        with self._lock:
            return [dict(record) for record in self._inversion_records]

    def long_holds(self) -> List[dict]:
        with self._lock:
            return [dict(record) for record in self._long_holds]

    def contention(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._contention)

    def report(self) -> dict:
        with self._lock:
            edges = sorted(
                f"{src}->{dst}"
                for src, targets in self._edges.items()
                for dst in targets
            )
            return {
                "inversions": [dict(r) for r in self._inversion_records],
                "long_holds": [dict(r) for r in self._long_holds],
                "contention": dict(self._contention),
                "hold_seconds_total": {
                    name: round(total, 6)
                    for name, total in sorted(self._hold_totals.items())
                },
                "order_edges": edges,
            }


class _WatchedLock:
    """Proxy around ``threading.Lock``/``RLock`` reporting to a LockWatch."""

    __slots__ = ("_name", "_watch", "_inner", "_reentrant")

    def __init__(self, name, watch, inner, reentrant=False):
        self._name = name
        self._watch = watch
        self._inner = inner
        self._reentrant = reentrant

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        got = self._inner.acquire(False)
        if not got:
            self._watch.note_contention(self._name)
            if not blocking:
                return False
            got = self._inner.acquire(True, timeout)
        if got:
            self._watch.note_acquired(self._name)
        return got

    def release(self) -> None:
        self._watch.note_released(self._name)
        self._inner.release()

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self) -> "_WatchedLock":
        self.acquire()
        return self

    def __exit__(self, *exc) -> bool:
        self.release()
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<WatchedLock {self._name!r} {self._inner!r}>"


class _WatchedCondition:
    """Proxy around ``threading.Condition`` reporting to a LockWatch.

    The underlying condition owns its own RLock; acquisition order is
    recorded under the condition's name.  ``wait``/``wait_for`` time is
    subtracted from the hold so the event-layer's blocking waits on the held
    condition never read as long holds.
    """

    __slots__ = ("_name", "_watch", "_inner")

    def __init__(self, name, watch):
        self._name = name
        self._watch = watch
        self._inner = threading.Condition()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        got = self._inner.acquire(False)
        if not got:
            self._watch.note_contention(self._name)
            if not blocking:
                return False
            got = self._inner.acquire(True, timeout)
        if got:
            self._watch.note_acquired(self._name)
        return got

    def release(self) -> None:
        self._watch.note_released(self._name)
        self._inner.release()

    def __enter__(self) -> "_WatchedCondition":
        self.acquire()
        return self

    def __exit__(self, *exc) -> bool:
        self.release()
        return False

    def wait(self, timeout: Optional[float] = None) -> bool:
        t0 = time.monotonic()
        try:
            return self._inner.wait(timeout)
        finally:
            self._watch.note_wait(self._name, time.monotonic() - t0)

    def wait_for(self, predicate, timeout: Optional[float] = None):
        t0 = time.monotonic()
        try:
            return self._inner.wait_for(predicate, timeout)
        finally:
            self._watch.note_wait(self._name, time.monotonic() - t0)

    def notify(self, n: int = 1) -> None:
        self._inner.notify(n)

    def notify_all(self) -> None:
        self._inner.notify_all()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<WatchedCondition {self._name!r}>"


# -- module-level watch ------------------------------------------------------

_active: Optional[LockWatch] = None
if _env_enabled():  # pragma: no cover - exercised via the CI lockwatch job
    _active = LockWatch()


def active() -> Optional[LockWatch]:
    """The installed watch, or ``None`` when lockwatch is disabled."""
    return _active


def install(watch: LockWatch) -> LockWatch:
    """Install ``watch`` as the process-wide witness (tests, chaos runs)."""
    global _active
    _active = watch
    return watch


def uninstall() -> None:
    global _active
    _active = None


def make_lock(name: str):
    """A ``threading.Lock`` — instrumented iff a watch is installed."""
    watch = _active
    if watch is None:
        return threading.Lock()
    return watch.lock(name)


def make_rlock(name: str):
    """A ``threading.RLock`` — instrumented iff a watch is installed."""
    watch = _active
    if watch is None:
        return threading.RLock()
    return watch.rlock(name)


def make_condition(name: str):
    """A ``threading.Condition`` — instrumented iff a watch is installed."""
    watch = _active
    if watch is None:
        return threading.Condition()
    return watch.condition(name)


def make_thread(target, name: str, daemon: bool = True) -> threading.Thread:
    """The one audited thread-construction site for runtime components.

    Every background thread the ops plane (reporters, autoscaler,
    dashboard) spawns goes through here: the thread is always *named* (so
    the witness's per-edge thread attribution and long-hold records point
    at a real component, not ``Thread-7``) and the ``daemon`` decision is
    explicit, which is exactly the contract the static RT-THREAD-LEAK rule
    enforces at call sites.
    """
    return threading.Thread(target=target, name=name, daemon=daemon)
