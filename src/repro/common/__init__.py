"""Shared building blocks: identifiers, serialization, errors, configuration.

Everything in :mod:`repro` — the real runtime (:mod:`repro.core`), the
discrete-event simulator (:mod:`repro.sim`), and the GCS substrate
(:mod:`repro.gcs`) — builds on the primitives defined here.
"""

from repro.common.errors import (
    ReproError,
    ObjectLostError,
    ObjectStoreFullError,
    TaskExecutionError,
    ActorDiedError,
    GetTimeoutError,
    RuntimeNotInitializedError,
    ResourceRequestError,
)
from repro.common.ids import (
    ActorID,
    BaseID,
    FunctionID,
    NodeID,
    ObjectID,
    TaskID,
)

__all__ = [
    "ActorID",
    "BaseID",
    "FunctionID",
    "NodeID",
    "ObjectID",
    "TaskID",
    "ReproError",
    "ObjectLostError",
    "ObjectStoreFullError",
    "TaskExecutionError",
    "ActorDiedError",
    "GetTimeoutError",
    "RuntimeNotInitializedError",
    "ResourceRequestError",
]
