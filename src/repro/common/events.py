"""Unified completion/notification layer for the runtime's blocking paths.

Every blocking operation in the paper's runtime — ``ray.get``, input
fetches, actor dispatch (Figure 7) — wakes on a GCS pub-sub or object
store notification, never on a fixed-interval poll.  This module is the
in-process analogue: a :class:`Completion` is a waitable flag with
callback fan-out that producers (object store puts, transfer arrivals,
GCS location updates) signal and consumers block on, and
:func:`wait_any` multiplexes several completions into one timed wait.

Timed waits still exist, but only as a *missed-wakeup backstop*: every
consumer sleeps for :data:`BACKSTOP_INTERVAL` (seconds) at most before
re-validating its condition, so a lost notification degrades latency to
~1 s instead of hanging forever.  Backstop activity is counted in
:class:`WaitStats`, which the cluster inspector and HTTP dashboard
surface — ``backstop_timeouts`` counts guarded re-arms (expected during
genuinely long waits), while ``backstop_recoveries`` counts waits the
backstop found already-satisfiable, i.e. actual missed wakeups; on a
healthy run recoveries stay at zero, which is how we know these paths
really are notification-driven.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Optional, Sequence
from repro.common.lockwatch import make_condition, make_lock

# Guarded missed-wakeup backstop.  Notification paths must deliver every
# wakeup; this bound only exists so a bug degrades to one-second latency
# rather than a hang.  It must stay >= 1s — anything shorter is a poll.
BACKSTOP_INTERVAL = 1.0


class WaitStats:
    """Cluster-wide counters for the notification layer.

    ``backstop_timeouts``/``backstop_recoveries`` are the health signal:
    recoveries mean a wakeup was missed and the guard caught it.

    ``wait_histogram`` (a :class:`repro.common.metrics.Histogram`, or any
    object with ``observe``) additionally receives the duration of every
    blocking wait, giving the metrics registry a wait-latency
    distribution on top of these counts.
    """

    __slots__ = (
        "_lock",
        "notifications",
        "callbacks_fired",
        "waits",
        "wakeups",
        "wait_timeouts",
        "backstop_timeouts",
        "backstop_recoveries",
        "wait_histogram",
    )

    def __init__(self, wait_histogram=None):
        self._lock = make_lock("WaitStats._lock")
        self.wait_histogram = wait_histogram
        self.notifications = 0  # Completion.set() calls that flipped the flag
        self.callbacks_fired = 0  # listener callbacks invoked by set()
        self.waits = 0  # blocking waits entered
        self.wakeups = 0  # waits satisfied by a notification
        self.wait_timeouts = 0  # waits that expired (deadline or backstop)
        self.backstop_timeouts = 0  # guarded backstop waits that fired
        self.backstop_recoveries = 0  # backstop firings that found real work

    def record_notification(self, num_callbacks: int = 0) -> None:
        with self._lock:
            self.notifications += 1
            self.callbacks_fired += num_callbacks

    def record_wait(self, satisfied: bool, seconds: Optional[float] = None) -> None:
        with self._lock:
            self.waits += 1
            if satisfied:
                self.wakeups += 1
            else:
                self.wait_timeouts += 1
        if self.wait_histogram is not None and seconds is not None:
            self.wait_histogram.observe(seconds)

    def record_backstop(self, recovered: bool = False) -> None:
        with self._lock:
            self.backstop_timeouts += 1
            if recovered:
                self.backstop_recoveries += 1

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return {
                "notifications": self.notifications,
                "callbacks_fired": self.callbacks_fired,
                "waits": self.waits,
                "wakeups": self.wakeups,
                "wait_timeouts": self.wait_timeouts,
                "backstop_timeouts": self.backstop_timeouts,
                "backstop_recoveries": self.backstop_recoveries,
            }


class Completion:
    """A waitable, re-armable notification with callback fan-out.

    Superset of :class:`threading.Event`: ``set``/``clear``/``is_set``/
    ``wait`` behave identically, plus listeners registered with
    :meth:`add_callback` fire exactly once per signal (immediately if
    already set), and completions compose into multi-waits via
    :func:`wait_any`.  Producers signal; consumers never poll.
    """

    __slots__ = ("_cond", "_flag", "_callbacks", "_stats")

    def __init__(self, stats: Optional[WaitStats] = None):
        self._cond = make_condition("Completion._cond")
        self._flag = False
        self._callbacks: List[Callable[["Completion"], None]] = []
        self._stats = stats

    def is_set(self) -> bool:
        with self._cond:
            return self._flag

    def set(self) -> bool:
        """Signal the completion; fire and consume pending callbacks.

        Returns True if this call flipped the flag (False if already set).
        """
        with self._cond:
            if self._flag:
                return False
            self._flag = True
            callbacks = self._callbacks
            self._callbacks = []
            self._cond.notify_all()
        if self._stats is not None:
            self._stats.record_notification(len(callbacks))
        for callback in callbacks:
            callback(self)
        return True

    def clear(self) -> None:
        """Re-arm: subsequent waits block until the next ``set``."""
        with self._cond:
            self._flag = False

    def wait(self, timeout: Optional[float] = None) -> bool:
        if self._stats is None:
            with self._cond:
                return self._cond.wait_for(lambda: self._flag, timeout)
        started = time.monotonic()
        with self._cond:
            satisfied = self._cond.wait_for(lambda: self._flag, timeout)
        self._stats.record_wait(satisfied, seconds=time.monotonic() - started)
        return satisfied

    def add_callback(self, callback: Callable[["Completion"], None]) -> None:
        """Run ``callback(self)`` on the next signal (now if already set).

        Each registered callback fires at most once; a ``clear``/``set``
        cycle does not re-fire callbacks consumed by an earlier signal.
        """
        with self._cond:
            if not self._flag:
                self._callbacks.append(callback)
                return
        callback(self)

    def remove_callback(self, callback: Callable[["Completion"], None]) -> None:
        """Deregister a pending callback (no-op if already fired/absent)."""
        with self._cond:
            try:
                self._callbacks.remove(callback)
            except ValueError:
                pass


def wait_any(
    completions: Sequence[Completion],
    timeout: Optional[float] = None,
    count: int = 1,
    stats: Optional[WaitStats] = None,
) -> List[Completion]:
    """Block until ``count`` of ``completions`` are set or ``timeout``
    expires.  Returns the completions that are set on exit (possibly
    fewer than ``count`` on timeout).

    ``stats`` records the blocking portion of the multi-wait (the fast
    path — enough completions already set — records nothing, matching
    ``Completion.wait``'s accounting of actual blocks only).
    """
    ready = [c for c in completions if c.is_set()]
    if len(ready) >= count or not completions:
        return ready

    gate = make_condition("wait_any.gate")

    def poke(_completion: Completion) -> None:
        with gate:
            gate.notify_all()

    registered = list(completions)
    for completion in registered:
        completion.add_callback(poke)
    started = time.monotonic()
    try:
        deadline = None if timeout is None else started + timeout
        with gate:
            while True:
                ready = [c for c in completions if c.is_set()]
                if len(ready) >= count:
                    return ready
                if deadline is None:
                    remaining = None
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return ready
                gate.wait(timeout=remaining)
    finally:
        for completion in registered:
            completion.remove_callback(poke)
        if stats is not None:
            stats.record_wait(
                len(ready) >= count, seconds=time.monotonic() - started
            )
