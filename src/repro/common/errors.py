"""Exception hierarchy for the repro runtime."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro framework."""


class RuntimeNotInitializedError(ReproError):
    """An API call was made before ``repro.init()``."""


class ObjectLostError(ReproError):
    """An object is not in any store and cannot be reconstructed."""

    def __init__(self, object_id, message: str = ""):
        self.object_id = object_id
        super().__init__(message or f"object {object_id!r} lost and not reconstructible")

    def __reduce__(self):
        return (type(self), (self.object_id, self.args[0]))


class ObjectStoreFullError(ReproError):
    """The object store cannot fit an object even after eviction."""


class TaskExecutionError(ReproError):
    """A remote function raised; the exception is propagated to ``get``.

    Mirrors Ray's behaviour: the error is stored in place of the return
    value and re-raised (wrapped) at every ``get`` of the result.
    """

    def __init__(self, task_id, cause: BaseException):
        self.task_id = task_id
        self.cause = cause
        super().__init__(f"task {task_id!r} failed: {cause!r}")

    def __reduce__(self):
        return (type(self), (self.task_id, self.cause))


class ActorDiedError(ReproError):
    """A method was called on an actor that died and cannot be restarted."""


class NodeDiedError(ReproError):
    """The node an operation was bound to died while the operation blocked.

    Raised out of blocking fetches pinned to a node that failed mid-wait.
    Worker threads stranded on a killed node use it to exit quietly: the
    failure path (``Runtime.kill_node``) has already resubmitted their
    tasks elsewhere, so the replacement execution owns the outputs.
    """

    def __init__(self, node_id=None):
        self.node_id = node_id
        super().__init__(f"node {node_id!r} died during the operation")


class TaskCancelledError(ReproError):
    """A task was cancelled via ``repro.cancel``.

    Like :class:`TaskExecutionError`, the instance is stored in place of
    the task's return value(s): every ``get`` of a cancelled output
    re-raises it, and downstream tasks consuming the output propagate it
    instead of running.
    """

    def __init__(self, task_id=None, message: str = ""):
        self.task_id = task_id
        super().__init__(message or f"task {task_id!r} was cancelled")

    def __reduce__(self):
        return (type(self), (self.task_id, self.args[0]))


class GetTimeoutError(ReproError):
    """``get`` with a timeout expired before the object became available."""


class ResourceRequestError(ReproError):
    """A task's resource request can never be satisfied by the cluster."""


class ChainUnavailableError(ReproError):
    """The replication chain has no live members."""


class CheckpointError(ReproError):
    """An actor checkpoint could not be saved or restored."""


class BackpressureError(ReproError):
    """A serve router shed a request because its pending queue is full.

    Raised synchronously by ``DeploymentHandle.submit``/``query`` when the
    deployment's admission bound (``max_queue_per_replica * num_replicas``)
    is reached; the HTTP ingress maps it to a 429 response.  Clients should
    back off and retry.
    """
