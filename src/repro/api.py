"""Public Ray-like API (paper Table 1).

    import repro

    repro.init(num_nodes=4)

    @repro.remote
    def add(a, b):
        return a + b

    ref = add.remote(1, 2)
    assert repro.get(ref) == 3

    @repro.remote(num_gpus=1)
    class Counter:
        def __init__(self):
            self.value = 0
        def incr(self):
            self.value += 1
            return self.value

    counter = Counter.remote()
    assert repro.get(counter.incr.remote()) == 1

All of Table 1 is implemented: ``f.remote(args)`` (non-blocking, returns
futures), ``get(futures)`` (blocking), ``wait(futures, num_returns,
timeout)``, ``Class.remote(args)`` / ``actor.method.remote(args)``, plus
``put``, nested remote functions, and per-task/per-actor resource
requirements (``num_cpus``, ``num_gpus``, ``resources``).
"""

from __future__ import annotations

import hashlib
import threading
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.common.lockwatch import make_lock
from repro.common.errors import RuntimeNotInitializedError
from repro.common.ids import ActorID, FunctionID, ObjectID
from repro.common.options import Options, suggest
from repro.core import context
from repro.core.resources import normalize_resources
from repro.core.runtime import Runtime, RuntimeConfig
from repro.core.task_spec import ArgRef, intern_shape

_runtime_lock = make_lock("api._runtime_lock")
_global_runtime: Optional[Runtime] = None


# ---------------------------------------------------------------------------
# Lifecycle
# ---------------------------------------------------------------------------


def init(config: Optional[RuntimeConfig] = None, **overrides: Any) -> Runtime:
    """Start an in-process cluster and install it as the global runtime.

    Accepts either a :class:`RuntimeConfig` or its fields as keyword
    arguments (``num_nodes``, ``num_cpus_per_node``, ``num_gpus_per_node``,
    ``object_store_capacity_bytes``, ``gcs_shards``, ``locality_aware``,
    ``scheduler_policy``, ``spillback_policy``, …).  Scheduler policies
    resolve by registry name, class, or instance — see
    ``docs/SCHEDULING.md``.

    Unknown keyword arguments are rejected here with the list of valid
    ``RuntimeConfig`` fields (``RuntimeConfig.describe()`` renders them
    with types, defaults, and one-line docs).
    """
    global _global_runtime
    if overrides:
        valid = set(RuntimeConfig.__dataclass_fields__)
        unknown = sorted(set(overrides) - valid)
        if unknown:
            hint = suggest(unknown[0], valid)
            raise TypeError(
                f"unknown repro.init() option(s) {unknown}{hint}; "
                f"valid RuntimeConfig fields: {sorted(valid)}"
            )
    with _runtime_lock:
        if _global_runtime is not None:
            raise RuntimeError("repro.init() called twice; call shutdown() first")
        _global_runtime = Runtime(config, **overrides)
        return _global_runtime


def shutdown() -> None:
    """Stop the global runtime (idempotent)."""
    global _global_runtime
    with _runtime_lock:
        if _global_runtime is not None:
            _global_runtime.shutdown()
            _global_runtime = None


def is_initialized() -> bool:
    return _global_runtime is not None


def get_runtime() -> Runtime:
    """The active runtime (the one servicing this thread, if in a task)."""
    runtime = context.current_runtime() or _global_runtime
    if runtime is None:
        raise RuntimeNotInitializedError("call repro.init() first")
    return runtime


# ---------------------------------------------------------------------------
# Futures
# ---------------------------------------------------------------------------


class ObjectRef:
    """A future for an object produced by a task, method, or ``put``."""

    __slots__ = ("object_id",)

    def __init__(self, object_id: ObjectID):
        self.object_id = object_id

    def hex(self) -> str:
        """The full object ID as a hex string (like ``ObjectRef.hex`` in Ray)."""
        return self.object_id.hex()

    def __hash__(self) -> int:
        return hash(self.object_id)

    def __eq__(self, other) -> bool:
        return isinstance(other, ObjectRef) and other.object_id == self.object_id

    def __repr__(self) -> str:
        return f"ObjectRef({self.object_id.hex()[:12]})"

    def __reduce__(self):
        return (ObjectRef, (self.object_id,))


def _encode_arg(value: Any) -> Any:
    if isinstance(value, ObjectRef):
        return ArgRef(value.object_id)
    return value


def _encode_args(
    args: Sequence[Any], kwargs: Dict[str, Any]
) -> Tuple[Tuple[Any, ...], Tuple[Tuple[str, Any], ...]]:
    encoded_args = tuple(_encode_arg(a) for a in args)
    encoded_kwargs = tuple(sorted((k, _encode_arg(v)) for k, v in kwargs.items()))
    return encoded_args, encoded_kwargs


def _to_ids(refs: Union[ObjectRef, Sequence[ObjectRef]]):
    if isinstance(refs, ObjectRef):
        return refs.object_id
    return [r.object_id for r in refs]


# ---------------------------------------------------------------------------
# Data plane
# ---------------------------------------------------------------------------


def put(value: Any) -> ObjectRef:
    """Store ``value`` in the local object store and return a future."""
    return ObjectRef(get_runtime().put(value))


def get(refs: Union[ObjectRef, Sequence[ObjectRef]], timeout: Optional[float] = None):
    """Blocking: return the value(s) for one future or a list of futures."""
    return get_runtime().get(_to_ids(refs), timeout=timeout)


def wait(
    refs: Sequence[ObjectRef],
    num_returns: int = 1,
    timeout: Optional[float] = None,
    fetch_local: bool = False,
) -> Tuple[List[ObjectRef], List[ObjectRef]]:
    """Block until ``num_returns`` futures are complete or timeout expires.

    With ``fetch_local=True`` the ready objects are also replicated to the
    caller's node before returning, making the subsequent ``get`` local.
    """
    ready, pending = get_runtime().wait(
        [r.object_id for r in refs],
        num_returns=num_returns,
        timeout=timeout,
        fetch_local=fetch_local,
    )
    return [ObjectRef(i) for i in ready], [ObjectRef(i) for i in pending]


def cancel(ref: ObjectRef, force: bool = False) -> bool:
    """Cancel the task that produces ``ref`` (like ``ray.cancel``).

    A task that has not started is dequeued and never runs; a running task
    is stopped cooperatively — its next blocking ``repro.get`` raises
    :class:`~repro.common.errors.TaskCancelledError` inside the task.  With
    ``force=True`` even a compute-bound task's outputs are replaced by the
    error at its finish boundary.  Every ``repro.get`` of a cancelled
    task's futures raises ``TaskCancelledError``.  Cancelling an already
    finished task is a no-op (returns False).
    """
    return get_runtime().cancel(ref.object_id, force=force)


# ---------------------------------------------------------------------------
# Remote functions
# ---------------------------------------------------------------------------


def _function_id_for(func) -> FunctionID:
    """Stable ID from the function's identity *and* code, so distinct
    same-named functions (common in tests) do not collide."""
    code = getattr(func, "__code__", None)
    if code is not None:
        # Bytecode alone is not enough: same-shaped functions differing only
        # in constants (x+1 vs x+2) share co_code.
        payload = code.co_code + repr(code.co_consts).encode() + repr(
            code.co_names
        ).encode()
        code_digest = hashlib.sha1(payload).hexdigest()
    else:
        code_digest = "builtin"
    return FunctionID.from_seed(
        f"{func.__module__}.{getattr(func, '__qualname__', repr(func))}:{code_digest}"
    )


class RemoteFunction:
    """A function invocable with ``.remote(args)`` returning futures."""

    def __init__(
        self,
        func,
        num_returns: int = 1,
        num_cpus: Optional[float] = None,
        num_gpus: Optional[float] = None,
        resources: Optional[Dict[str, float]] = None,
        max_retries: int = 0,
        retry_exceptions: Optional[Sequence[type]] = None,
    ):
        self._func = func
        self._num_returns = num_returns
        self._resources = normalize_resources(num_cpus, num_gpus, resources)
        self._max_retries = max_retries
        self._retry_exceptions = (
            None if retry_exceptions is None else tuple(retry_exceptions)
        )
        self._function_id = _function_id_for(func)
        self.__name__ = getattr(func, "__name__", "remote_function")
        self.__doc__ = func.__doc__
        self._intern()

    def _intern(self) -> None:
        # Canonicalize the invocation shape: every ``.remote()`` of this
        # function (and of ``.options()`` clones with equal options) then
        # shares one resources dict instead of copying a fresh one per
        # call.  Specs never mutate it — readers copy when they need
        # ownership.
        self._shape = intern_shape(
            self._function_id,
            self.__name__,
            self._num_returns,
            self._resources,
            max_retries=self._max_retries,
            retry_exceptions=self._retry_exceptions,
        )
        self._resources = self._shape.resources

    def options(self, **kwargs: Any) -> "RemoteFunction":
        """A copy of this remote function with overridden invocation options.

        Validated through the shared :class:`~repro.common.options.Options`
        path (surface ``"task"``); unknown keys raise ``TypeError`` with a
        did-you-mean suggestion.  Chained calls *merge*: a later
        ``.options()`` overrides only the fields it actually sets.
        """
        opts = Options.for_surface("task", **kwargs)
        clone = RemoteFunction(
            self._func,
            num_returns=opts.get("num_returns", self._num_returns),
            max_retries=opts.get("max_retries", self._max_retries),
            retry_exceptions=opts.get("retry_exceptions", self._retry_exceptions),
        )
        if any(opts.is_set(k) for k in ("num_cpus", "num_gpus", "resources")):
            clone._resources = normalize_resources(
                opts.get("num_cpus"), opts.get("num_gpus"), opts.get("resources")
            )
        else:
            clone._resources = self._resources
        clone._intern()
        return clone

    def remote(self, *args: Any, **kwargs: Any):
        """Invoke remotely; returns one ObjectRef or a tuple of them."""
        runtime = get_runtime()
        runtime.ensure_function_registered(self._function_id, self._func)
        encoded_args, encoded_kwargs = _encode_args(args, kwargs)
        return_ids = runtime.submit_task(
            self._function_id,
            self.__name__,
            encoded_args,
            encoded_kwargs,
            num_returns=self._num_returns,
            resources=self._resources,
            max_retries=self._max_retries,
            retry_exceptions=self._retry_exceptions,
        )
        refs = tuple(ObjectRef(i) for i in return_ids)
        if self._num_returns == 1:
            return refs[0]
        return refs

    def submit_many(
        self, calls: Sequence[Sequence[Any]], batched: Optional[bool] = None
    ) -> List[Any]:
        """Submit one invocation per element of ``calls`` in a single batch.

        Each element is a tuple of positional arguments (``()`` for a
        no-arg call; use ``.remote()`` for keyword arguments).  The whole
        batch's GCS task-row adds and ``task_submitted`` events coalesce
        into one write per shard, which is the cheap way to launch large
        fan-outs.  Returns one future per call (or one tuple of futures
        per call when ``num_returns > 1``), in submission order.

        ``batched=False`` forces the per-call write path — the batch is
        then semantically identical but pays one GCS round-trip per task
        (kept for ablation; see ``scripts/bench_throughput.py``).
        """
        runtime = get_runtime()
        runtime.ensure_function_registered(self._function_id, self._func)
        encoded = [_encode_args(tuple(args), {}) for args in calls]
        id_tuples = runtime.submit_many(
            self._function_id,
            self.__name__,
            encoded,
            num_returns=self._num_returns,
            resources=self._resources,
            max_retries=self._max_retries,
            retry_exceptions=self._retry_exceptions,
            batched=batched,
        )
        if self._num_returns == 1:
            return [ObjectRef(ids[0]) for ids in id_tuples]
        return [tuple(ObjectRef(i) for i in ids) for ids in id_tuples]

    def __call__(self, *args: Any, **kwargs: Any):
        raise TypeError(
            f"remote function {self.__name__} cannot be called directly; "
            "use .remote()"
        )


def submit_many(
    func: "RemoteFunction",
    calls: Sequence[Sequence[Any]],
    batched: Optional[bool] = None,
) -> List[Any]:
    """Batch-submit many calls of one remote function — see
    :meth:`RemoteFunction.submit_many`."""
    if not isinstance(func, RemoteFunction):
        raise TypeError(
            "submit_many expects a @repro.remote function, got "
            f"{type(func).__name__}"
        )
    return func.submit_many(calls, batched=batched)


# ---------------------------------------------------------------------------
# Actors
# ---------------------------------------------------------------------------


class ActorMethod:
    """Bound ``actor.method`` supporting ``.remote(args)``."""

    def __init__(
        self,
        handle: "ActorHandle",
        method_name: str,
        num_returns: int = 1,
        max_retries: Optional[int] = None,
        retry_exceptions: Optional[Sequence[type]] = None,
    ):
        self._handle = handle
        self._method_name = method_name
        self._num_returns = num_returns
        self._max_retries = max_retries
        self._retry_exceptions = (
            None if retry_exceptions is None else tuple(retry_exceptions)
        )

    def options(self, **kwargs: Any) -> "ActorMethod":
        """A copy of this bound method with overridden per-call options
        (shared :class:`~repro.common.options.Options` path, surface
        ``"method"``; chained calls merge)."""
        opts = Options.for_surface("method", **kwargs)
        return ActorMethod(
            self._handle,
            self._method_name,
            num_returns=opts.get("num_returns", self._num_returns),
            max_retries=opts.get("max_retries", self._max_retries),
            retry_exceptions=opts.get("retry_exceptions", self._retry_exceptions),
        )

    def remote(self, *args: Any, **kwargs: Any):
        runtime = get_runtime()
        encoded_args, encoded_kwargs = _encode_args(args, kwargs)
        return_ids = runtime.submit_actor_method(
            self._handle.actor_id,
            self._method_name,
            encoded_args,
            encoded_kwargs,
            num_returns=self._num_returns,
            max_retries=self._max_retries,
            retry_exceptions=self._retry_exceptions,
        )
        refs = tuple(ObjectRef(i) for i in return_ids)
        if self._num_returns == 1:
            return refs[0]
        return refs


class ActorHandle:
    """A handle to a remote actor; can be passed to tasks and other actors."""

    def __init__(self, actor_id: ActorID):
        self.actor_id = actor_id

    def __getattr__(self, name: str) -> ActorMethod:
        if name.startswith("_"):
            raise AttributeError(name)
        return ActorMethod(self, name)

    def __repr__(self) -> str:
        """Stable, greppable form carrying class, name, and incarnation
        when the runtime can resolve them, e.g.
        ``ActorHandle(Counter, 1f2e3d4c5b6a, name='alpha', incarnation=2)``."""
        short = self.actor_id.hex()[:12]
        runtime = context.current_runtime() or _global_runtime
        actors = getattr(runtime, "actors", None)
        state = actors.get_state(self.actor_id) if actors is not None else None
        if state is None:
            return f"ActorHandle({short})"
        name_part = f", name={state.name!r}" if state.name else ""
        return (
            f"ActorHandle({state.class_name}, {short}{name_part}, "
            f"incarnation={state.incarnation})"
        )

    def __reduce__(self):
        return (ActorHandle, (self.actor_id,))


class ActorClass:
    """A class invocable with ``.remote(args)`` returning an ActorHandle."""

    def __init__(
        self,
        cls: type,
        num_cpus: Optional[float] = None,
        num_gpus: Optional[float] = None,
        resources: Optional[Dict[str, float]] = None,
        checkpoint_interval: Optional[int] = None,
        max_restarts: int = 4,
        name: Optional[str] = None,
    ):
        self._cls = cls
        self._resources = normalize_resources(num_cpus, num_gpus, resources)
        self._checkpoint_interval = checkpoint_interval
        self._max_restarts = max_restarts
        self._name = name
        self.__name__ = cls.__name__
        self.__doc__ = cls.__doc__

    def options(self, **kwargs: Any) -> "ActorClass":
        """A copy of this actor class with overridden creation options.

        Shared :class:`~repro.common.options.Options` path (surface
        ``"actor"``).  Chained calls merge; in particular, a call that
        sets no resource field *keeps* the decorator's resources instead
        of resetting them to the defaults (the historical divergence from
        ``RemoteFunction.options``).
        """
        opts = Options.for_surface("actor", **kwargs)
        clone = ActorClass(
            self._cls,
            checkpoint_interval=opts.get(
                "checkpoint_interval", self._checkpoint_interval
            ),
            max_restarts=opts.get("max_restarts", self._max_restarts),
            name=opts.get("name", self._name),
        )
        if any(opts.is_set(k) for k in ("num_cpus", "num_gpus", "resources")):
            clone._resources = normalize_resources(
                opts.get("num_cpus"), opts.get("num_gpus"), opts.get("resources")
            )
        else:
            clone._resources = self._resources
        return clone

    def remote(self, *args: Any, **kwargs: Any) -> ActorHandle:
        """Instantiate the class as a remote actor (paper Table 1).

        A ``name`` given via ``.options(name=...)`` registers the actor in
        the cluster-wide name registry (``repro.get_actor``); duplicate
        names raise ValueError before the actor is created.
        """
        runtime = get_runtime()
        encoded_args, encoded_kwargs = _encode_args(args, kwargs)
        actor_id = runtime.create_actor(
            self._cls,
            encoded_args,
            encoded_kwargs,
            resources=dict(self._resources),
            checkpoint_interval=self._checkpoint_interval,
            max_restarts=self._max_restarts,
            name=self._name,
        )
        return ActorHandle(actor_id)

    def __call__(self, *args: Any, **kwargs: Any):
        raise TypeError(
            f"actor class {self.__name__} cannot be instantiated directly; "
            "use .remote()"
        )


def get_actor(name: str) -> ActorHandle:
    """Look up a live named actor (like ``ray.get_actor``).

    Raises ValueError if no live actor holds the name — either it was
    never registered, or it died permanently (which frees the name).
    """
    state = get_runtime().actors.get_by_name(name)
    if state is None:
        raise ValueError(f"no live actor named {name!r}")
    return ActorHandle(state.actor_id)


def nodes() -> List[Dict[str, Any]]:
    """Cluster membership snapshot (like ``ray.nodes``): one dict per node
    — id, liveness, resources, and object-store occupancy — including dead
    nodes, in creation order."""
    return get_runtime().nodes_info()


def cluster_resources() -> Dict[str, float]:
    """Total resources of all live nodes (like ``ray.cluster_resources``)."""
    return get_runtime().cluster_resources()


def available_resources() -> Dict[str, float]:
    """Currently unclaimed resources across all live nodes."""
    return get_runtime().available_resources()


def method(
    read_only: bool = False,
    max_retries: int = 0,
    retry_exceptions: Optional[Sequence[type]] = None,
):
    """Annotate an actor method (like ``ray.method``).

    ``read_only=True`` declares that the method does not mutate the actor's
    state, allowing reconstruction to skip replaying it when its outputs
    still exist — the optimization the paper proposes in Section 5.1
    ("allowing users to annotate methods that do not mutate state").

    ``max_retries`` / ``retry_exceptions`` enable in-place app-level
    retries for the method (overridable per call via
    ``actor.method.options(...)``); a retried method still counts once
    toward ``checkpoint_interval``.

        @repro.remote
        class Store:
            @repro.method(read_only=True)
            def peek(self):
                return self.value
    """

    def decorator(func):
        func.__repro_read_only__ = read_only
        func.__repro_max_retries__ = max_retries
        func.__repro_retry_exceptions__ = (
            None if retry_exceptions is None else tuple(retry_exceptions)
        )
        return func

    return decorator


def free(
    refs: Union[ObjectRef, Sequence[ObjectRef]], delete_lineage: bool = False
) -> int:
    """Drop all copies of the given objects from every object store.

    With ``delete_lineage=True`` the producing tasks' GCS records are also
    removed, permanently bounding GCS memory at the cost of making the
    objects unrecoverable (see ``repro.core.gc``).
    """
    from repro.core.gc import free_objects

    ids = _to_ids(refs)
    if not isinstance(ids, list):
        ids = [ids]
    return free_objects(get_runtime(), ids, delete_lineage=delete_lineage)


def kill(actor: ActorHandle, restart: bool = False) -> None:
    """Terminate an actor (like ``ray.kill``).

    Releases the actor's lifetime resources.  With ``restart=False`` the
    actor is gone for good: pending and future method calls resolve to
    :class:`~repro.common.errors.ActorDiedError`.  With ``restart=True``
    this simulates a crash, exercising checkpoint-replay reconstruction.
    """
    get_runtime().actors.kill_actor(actor.actor_id, restart=restart)


# ---------------------------------------------------------------------------
# The @remote decorator
# ---------------------------------------------------------------------------


def remote(*args: Any, **kwargs: Any):
    """Turn a function into a :class:`RemoteFunction` or a class into an
    :class:`ActorClass`.

    Usable bare (``@remote``) or with options
    (``@remote(num_gpus=1, num_returns=2)``).
    """
    if len(args) == 1 and not kwargs and (callable(args[0]) or isinstance(args[0], type)):
        return _wrap_remote(args[0])
    if args:
        raise TypeError("remote() options must be passed as keywords")

    def decorator(target):
        return _wrap_remote(target, **kwargs)

    return decorator


def _wrap_remote(target, **options: Any):
    # Decorator keywords flow through the same Options validation path as
    # every .options() surface — one place rejects unknown keys.
    if isinstance(target, type):
        opts = Options.for_surface("actor", **options)
        return ActorClass(
            target,
            num_cpus=opts.get("num_cpus"),
            num_gpus=opts.get("num_gpus"),
            resources=opts.get("resources"),
            checkpoint_interval=opts.get("checkpoint_interval"),
            max_restarts=opts.get("max_restarts", 4),
            name=opts.get("name"),
        )
    opts = Options.for_surface("task", **options)
    return RemoteFunction(
        target,
        num_returns=opts.get("num_returns", 1),
        num_cpus=opts.get("num_cpus"),
        num_gpus=opts.get("num_gpus"),
        resources=opts.get("resources"),
        max_retries=opts.get("max_retries", 0),
        retry_exceptions=opts.get("retry_exceptions"),
    )
