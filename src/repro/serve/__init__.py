"""``repro.serve`` — the high-QPS model-serving plane (see docs/SERVING.md).

Layered purely on the task/actor API: a ``@serve.deployment`` decorator
deploys a named-actor replica group behind a router with dynamic
micro-batching, admission control/backpressure, per-replica p50/p99
metrics in the GCS, versioned hot model-swap, and a load-based replica
autoscaler (:class:`repro.tools.autoscaler.ReplicaAutoscaler`).

    import repro
    from repro import serve

    @serve.deployment(num_replicas=2, max_batch_size=8)
    def double(x):
        return x * 2

    repro.init()
    handle = double.deploy()
    assert handle.query(21) == 42
"""

from repro.common.errors import BackpressureError
from repro.serve.deployment import (
    Deployment,
    DeploymentHandle,
    ServePlane,
    ServeReplica,
    deployment,
    get_deployment,
    get_plane,
    list_deployments,
)
from repro.serve.http import ServeHTTPServer
from repro.serve.router import Router, ServeFuture

__all__ = [
    "BackpressureError",
    "Deployment",
    "DeploymentHandle",
    "Router",
    "ServeFuture",
    "ServeHTTPServer",
    "ServePlane",
    "ServeReplica",
    "deployment",
    "get_deployment",
    "get_plane",
    "list_deployments",
]
