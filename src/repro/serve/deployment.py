"""Deployments: named-actor replica groups with versioned hot swap.

A *deployment* is a user callable (class or function) served by
``num_replicas`` replica actors behind one :class:`~repro.serve.router.Router`.
Everything is layered on the existing task/actor API — a replica is an
ordinary named actor (``serve:<deployment>#v<version>:<index>``) created
through :class:`repro.api.ActorClass`, so it inherits placement, lifetime
resources, crash-restart reconstruction (``max_restarts``), and the chaos
harness for free.

    import repro
    from repro import serve

    @serve.deployment(num_replicas=2, max_batch_size=8, batch_wait_timeout_s=0.02)
    class Model:
        def __init__(self, scale):
            self.scale = scale
        def handle_batch(self, payloads):           # vectorized path
            return [p * self.scale for p in payloads]

    repro.init()
    handle = Model.deploy(3)              # version 1
    assert handle.query(2) == 6
    handle = Model.options(max_batch_size=16).deploy(4)   # version 2: hot swap

Hot swap: ``deploy()`` on an existing deployment creates the new replica
group, atomically repoints the router (new requests only see v2), writes
the versioned row to the GCS deployment table, then *drains* the old
replicas — each finishes its in-flight methods before being killed
(:meth:`Runtime.drain_actor`).

Options flow through the same validated :class:`repro.common.options.Options`
object as tasks/actors/methods (surface ``"deployment"``) — unknown keys
fail with did-you-mean, and ``.options()`` calls chain/merge.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro import api
from repro.common.lockwatch import make_lock, make_thread
from repro.common.options import Options
from repro.serve.router import Router

DEFAULT_NUM_REPLICAS = 1
DEFAULT_MAX_BATCH_SIZE = 8
DEFAULT_BATCH_WAIT_TIMEOUT_S = 0.05
DEFAULT_MAX_QUEUE_PER_REPLICA = 64
DEFAULT_MAX_RESTARTS = 4
DRAIN_TIMEOUT_S = 10.0


class ServeReplica:
    """The generic replica actor: holds one instance of the user target.

    ``handle_batch(payloads)`` prefers the target's vectorized
    ``handle_batch`` when it defines one; otherwise it maps the target
    (``__call__`` for classes, the function itself otherwise) over the
    batch.  Either way the router gets exactly one result per payload.
    """

    def __init__(self, target: Any, version: int, init_args, init_kwargs):
        if isinstance(target, type):
            self.impl = target(*init_args, **init_kwargs)
        else:
            if init_args or init_kwargs:
                raise TypeError(
                    "function deployments take no deploy()-time arguments"
                )
            self.impl = target
        self.version = version
        self.handled = 0

    def handle_batch(self, payloads: List[Any]) -> List[Any]:
        self.handled += len(payloads)
        batch_fn = getattr(self.impl, "handle_batch", None)
        if callable(batch_fn):
            return list(batch_fn(list(payloads)))
        return [self.impl(payload) for payload in payloads]

    def info(self) -> Dict[str, Any]:
        return {"version": self.version, "handled": self.handled}


class _DeploymentState:
    """Plane-side record for one live deployment."""

    def __init__(self, name: str):
        self.name = name
        self.version = 0
        self.router: Optional[Router] = None
        self.target: Any = None
        self.init_args: Tuple[Any, ...] = ()
        self.init_kwargs: Dict[str, Any] = {}
        self.opts: Options = Options()
        self.replica_seq = 0  # monotonic index so names never collide


class ServePlane:
    """Per-runtime serve registry: deployments, routers, drains.

    Registered as an ops component (``runtime.register_ops``) so
    ``Runtime.shutdown()`` stops every router before the actors go away.
    Control operations (deploy / scale / delete) are serialized per plane;
    blocking work (actor creation, drains, GCS writes) happens outside the
    registry lock.
    """

    def __init__(self, runtime: Any):
        self.runtime = runtime
        self._lock = make_lock("serve.ServePlane._lock")
        self._control = make_lock("serve.ServePlane._control")
        self._deployments: Dict[str, _DeploymentState] = {}
        self._drain_threads: List[Any] = []
        self._stopped = False

    # -- registry -------------------------------------------------------

    def get(self, name: str) -> Optional[_DeploymentState]:
        with self._lock:
            return self._deployments.get(name)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._deployments)

    def handle(self, name: str) -> "DeploymentHandle":
        state = self.get(name)
        if state is None:
            raise KeyError(f"no deployment named {name!r}")
        return DeploymentHandle(self, name)

    # -- deploy / swap --------------------------------------------------

    def deploy(
        self,
        deployment: "Deployment",
        init_args: Tuple[Any, ...],
        init_kwargs: Dict[str, Any],
        version: Optional[int] = None,
    ) -> "DeploymentHandle":
        with self._control:
            if self._stopped:
                raise RuntimeError("serve plane is stopped")
            name = deployment.name
            with self._lock:
                state = self._deployments.get(name)
                if state is None:
                    state = self._deployments[name] = _DeploymentState(name)
            old_router_replicas: List[Tuple[Any, str]] = []
            new_version = state.version + 1 if version is None else version
            if new_version <= state.version:
                raise ValueError(
                    f"deployment {name!r} is already at version {state.version}; "
                    f"cannot deploy version {new_version}"
                )
            opts = deployment.opts
            state.target = deployment.target
            state.init_args = tuple(init_args)
            state.init_kwargs = dict(init_kwargs)
            state.opts = opts

            num_replicas = opts.get("num_replicas", DEFAULT_NUM_REPLICAS)
            replicas = [
                self._create_replica(state, new_version)
                for _ in range(num_replicas)
            ]

            if state.router is None:
                state.router = Router(
                    self.runtime,
                    name,
                    version=new_version,
                    max_batch_size=opts.get("max_batch_size", DEFAULT_MAX_BATCH_SIZE),
                    batch_wait_timeout_s=opts.get(
                        "batch_wait_timeout_s", DEFAULT_BATCH_WAIT_TIMEOUT_S
                    ),
                    max_queue_per_replica=opts.get(
                        "max_queue_per_replica", DEFAULT_MAX_QUEUE_PER_REPLICA
                    ),
                ).start()
                state.router.set_replicas(replicas, version=new_version)
            else:
                # Hot swap: capture the old group, repoint the router (new
                # requests only ever see the new version), then drain.
                old_router_replicas = self._current_replicas(state)
                state.router.set_replicas(
                    replicas,
                    version=new_version,
                    max_batch_size=opts.get("max_batch_size"),
                    batch_wait_timeout_s=opts.get("batch_wait_timeout_s"),
                    max_queue_per_replica=opts.get("max_queue_per_replica"),
                )
            state.version = new_version
        # GCS writes and drains happen off the control lock (the row is
        # last-write-wins; a racing scale_to republishes a consistent one).
        self._publish_row(state)
        self.runtime.gcs.record_event(
            "serve",
            action="deploy",
            deployment=name,
            version=new_version,
            replicas=len(replicas),
        )
        for handle, _name in old_router_replicas:
            self._drain_async(handle)
        return DeploymentHandle(self, name)

    def _current_replicas(self, state: _DeploymentState) -> List[Tuple[Any, str]]:
        router = state.router
        if router is None:
            return []
        with router._cond:
            return [(slot.handle, slot.actor_name) for slot in router._slots]

    def _create_replica(
        self, state: _DeploymentState, version: int
    ) -> Tuple[Any, str]:
        index = state.replica_seq
        state.replica_seq += 1
        actor_name = f"serve:{state.name}#v{version}:{index}"
        opts = state.opts
        actor_cls = api.ActorClass(
            ServeReplica,
            num_cpus=opts.get("num_cpus"),
            num_gpus=opts.get("num_gpus"),
            resources=opts.get("resources"),
            max_restarts=opts.get("max_restarts", DEFAULT_MAX_RESTARTS),
            name=actor_name,
        )
        handle = actor_cls.remote(
            state.target, version, state.init_args, state.init_kwargs
        )
        return handle, actor_name

    def _drain_async(self, handle: Any) -> None:
        """Retire one replica off the control path: wait out its in-flight
        methods, then kill it permanently."""
        runtime = self.runtime

        def drain() -> None:
            runtime.drain_actor(handle.actor_id, timeout=DRAIN_TIMEOUT_S)

        thread = make_thread(
            drain, name=f"serve-drain-{handle.actor_id.hex()[:8]}", daemon=True
        )
        self._drain_threads.append(thread)
        thread.start()

    def wait_drains(self, timeout: float = DRAIN_TIMEOUT_S) -> None:
        """Test hook: block until queued drains finish."""
        for thread in list(self._drain_threads):
            thread.join(timeout=timeout)

    # -- scaling (the replica autoscaler's hooks) -----------------------

    def scale_to(self, name: str, num_replicas: int) -> int:
        """Grow or shrink the live replica group to ``num_replicas``.

        Scale-down drains the removed replicas (in-flight finishes first).
        Returns the resulting group size.
        """
        if num_replicas < 1:
            raise ValueError("num_replicas must be >= 1")
        with self._control:
            state = self.get(name)
            if state is None or state.router is None:
                raise KeyError(f"no deployment named {name!r}")
            router = state.router
            current = len(router.replica_infos())
            while current < num_replicas:
                handle, actor_name = self._create_replica(state, state.version)
                router.add_replica(handle, actor_name)
                current += 1
            while current > num_replicas:
                removed = router.remove_replica()
                if removed is None:
                    break
                self._drain_async(removed[0])
                current -= 1
        self._publish_row(state)
        return current

    def replace_dead_replicas(self, name: str) -> int:
        """Swap permanently-dead replicas for fresh ones (same version).
        Returns how many were replaced."""
        with self._control:
            state = self.get(name)
            if state is None or state.router is None:
                return 0
            router = state.router
            dead = [info for info in router.replica_infos() if info["dead"]]
            for info in dead:
                router.remove_replica(info["actor_name"])
                handle, actor_name = self._create_replica(state, state.version)
                router.add_replica(handle, actor_name)
        if dead:
            self._publish_row(state)
        return len(dead)

    # -- GCS rows -------------------------------------------------------

    def _publish_row(self, state: _DeploymentState) -> None:
        router = state.router
        replicas = router.replica_infos() if router is not None else []
        self.runtime.gcs.put_deployment(
            state.name,
            {
                "name": state.name,
                "version": state.version,
                "num_replicas": len(replicas),
                "replicas": [info["actor_name"] for info in replicas],
                "max_batch_size": router.max_batch_size if router else None,
                "batch_wait_timeout_s": router.batch_wait_timeout_s if router else None,
                "max_queue_per_replica": (
                    router.max_queue_per_replica if router else None
                ),
                "created_at": time.time(),
            },
        )

    # -- teardown -------------------------------------------------------

    def delete(self, name: str) -> None:
        """Tear one deployment down: stop its router, drain its replicas."""
        with self._control:
            with self._lock:
                state = self._deployments.pop(name, None)
            if state is None:
                return
            replicas = self._current_replicas(state)
            if state.router is not None:
                state.router.stop()
        for handle, _name in replicas:
            self._drain_async(handle)
        self.runtime.gcs.delete_deployment(name)
        self.runtime.gcs.tombstone_serve_report(name)

    def stop(self) -> None:
        """Idempotent ops-component teardown (runtime shutdown path):
        stops routers only — the runtime kills the actors itself."""
        with self._lock:
            if self._stopped:
                return
            self._stopped = True
            states = list(self._deployments.values())
        for state in states:
            if state.router is not None:
                state.router.stop()

    def summary(self) -> Dict[str, Any]:
        """Everything the dashboard ``/serve`` panel shows."""
        out: Dict[str, Any] = {}
        with self._lock:
            states = list(self._deployments.values())
        for state in states:
            row: Dict[str, Any] = {"version": state.version}
            if state.router is not None:
                row.update(state.router.stats())
            out[state.name] = row
        return out


_plane_lock = make_lock("serve._plane_lock")


def get_plane(runtime: Any) -> ServePlane:
    """The runtime's serve plane, created on first use."""
    with _plane_lock:
        plane = getattr(runtime, "_serve_plane", None)
        if plane is None or plane._stopped:
            plane = ServePlane(runtime)
            runtime._serve_plane = plane
            runtime.register_ops(plane)
        return plane


class DeploymentHandle:
    """A client handle to one live deployment (safe to share/pass)."""

    def __init__(self, plane: ServePlane, name: str):
        self._plane = plane
        self.name = name

    def _router(self) -> Router:
        state = self._plane.get(self.name)
        if state is None or state.router is None:
            raise KeyError(f"deployment {self.name!r} is not deployed")
        return state.router

    def submit(self, payload: Any):
        """Non-blocking: enqueue one request, return a ServeFuture.
        Raises BackpressureError when the admission bound is hit."""
        return self._router().submit(payload)

    def query(self, payload: Any, timeout: Optional[float] = None) -> Any:
        """Blocking round-trip for one request."""
        return self._router().query(payload, timeout=timeout)

    def query_many(
        self, payloads: List[Any], timeout: Optional[float] = None
    ) -> List[Any]:
        """Submit a burst, then gather (amortizes batching across them)."""
        futures = [self.submit(p) for p in payloads]
        return [future.result(timeout) for future in futures]

    @property
    def version(self) -> int:
        state = self._plane.get(self.name)
        return state.version if state is not None else 0

    @property
    def num_replicas(self) -> int:
        return len(self._router().replica_infos())

    def stats(self) -> Dict[str, Any]:
        return self._router().stats()

    def __repr__(self) -> str:
        state = self._plane.get(self.name)
        if state is None or state.router is None:
            return f"DeploymentHandle({self.name!r}, undeployed)"
        return (
            f"DeploymentHandle({self.name!r}, version={state.version}, "
            f"replicas={len(state.router.replica_infos())})"
        )


class Deployment:
    """The deployable object ``@serve.deployment`` produces.

    Immutable: ``.options()`` returns a new Deployment with merged options
    (same chaining semantics as every other options surface).
    """

    def __init__(self, target: Any, opts: Options):
        self.target = target
        self.opts = opts
        self.name = opts.get("name") or getattr(target, "__name__", "deployment")
        self.__doc__ = getattr(target, "__doc__", None)

    def options(self, **kwargs: Any) -> "Deployment":
        new = Options.for_surface("deployment", **kwargs)
        return Deployment(self.target, self.opts.merged(new))

    def deploy(
        self, *init_args: Any, version: Optional[int] = None, **init_kwargs: Any
    ) -> DeploymentHandle:
        """Create (or hot-swap to) a new version of this deployment."""
        plane = get_plane(api.get_runtime())
        return plane.deploy(self, init_args, init_kwargs, version=version)

    def __call__(self, *args: Any, **kwargs: Any):
        raise TypeError(
            f"deployment {self.name!r} cannot be called directly; "
            "deploy() it and use the handle"
        )

    def __repr__(self) -> str:
        return f"Deployment({self.name!r}, {self.opts!r})"


def deployment(_target: Any = None, **kwargs: Any):
    """Declare a deployment (bare or with options):

        @serve.deployment
        class Model: ...

        @serve.deployment(num_replicas=4, max_batch_size=16)
        def embed(payload): ...

    Keywords are validated through ``Options.for_surface("deployment")`` —
    the same single path as task/actor/method options.
    """
    opts = Options.for_surface("deployment", **kwargs)
    if _target is not None:
        if kwargs:
            raise TypeError("pass either a bare target or keyword options")
        return Deployment(_target, opts)

    def decorator(target: Any) -> Deployment:
        return Deployment(target, opts)

    return decorator


def get_deployment(name: str) -> DeploymentHandle:
    """Look up a live deployment by name (like ``serve.get_deployment``)."""
    return get_plane(api.get_runtime()).handle(name)


def list_deployments() -> List[str]:
    return get_plane(api.get_runtime()).names()
