"""HTTP ingress for the serve plane: JSON in, JSON out, 429 on shed.

A thin localhost front door over :class:`repro.serve.deployment.ServePlane`
(the process-internal path — ``handle.query`` — stays the fast path; this
exists so external load generators and the benchmark's Clipper comparison
hit a real HTTP surface):

    POST /serve/<deployment>   body: JSON payload (or {"payload": ...})
        200 {"result": ...}          answered
        429 {"error": "backpressure", ...}   admission bound hit — back off
        404 unknown deployment
        500 {"error": ...}           replica raised
    GET  /serve                 router stats for every deployment

Backpressure is the point: the router's :class:`BackpressureError` maps to
429 + Retry-After instead of an unbounded queue.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING, Any, Optional

from repro.common.errors import BackpressureError, GetTimeoutError
from repro.common.lockwatch import make_lock, make_thread

if TYPE_CHECKING:  # pragma: no cover
    import threading

    from repro.serve.deployment import ServePlane

DEFAULT_QUERY_TIMEOUT_S = 30.0


def _sanitize(obj: Any) -> Any:
    if isinstance(obj, float):
        return obj if obj == obj and obj not in (float("inf"), float("-inf")) else None
    if isinstance(obj, dict):
        return {key: _sanitize(value) for key, value in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_sanitize(value) for value in obj]
    return obj


class ServeHTTPServer:
    """Threaded localhost HTTP server bound to one serve plane."""

    def __init__(
        self,
        plane: "ServePlane",
        host: str = "127.0.0.1",
        port: int = 0,
        query_timeout_s: float = DEFAULT_QUERY_TIMEOUT_S,
    ):
        self._plane = plane
        self._host = host
        self._port = port
        self._query_timeout_s = query_timeout_s
        self._lock = make_lock("serve.ServeHTTPServer._lock")
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional["threading.Thread"] = None

    @property
    def url(self) -> str:
        with self._lock:
            if self._httpd is None:
                raise RuntimeError("server not started")
            host, port = self._httpd.server_address[:2]
        return f"http://{host}:{port}"

    def start(self) -> "ServeHTTPServer":
        with self._lock:
            if self._httpd is not None:
                return self
            plane = self._plane
            timeout = self._query_timeout_s

            class Handler(BaseHTTPRequestHandler):
                def log_message(self, *args: Any) -> None:  # silence stderr
                    pass

                def _reply(self, code: int, body: Any, headers=()) -> None:
                    data = json.dumps(_sanitize(body), allow_nan=False).encode()
                    self.send_response(code)
                    self.send_header("Content-Type", "application/json")
                    self.send_header("Content-Length", str(len(data)))
                    for key, value in headers:
                        self.send_header(key, value)
                    self.end_headers()
                    self.wfile.write(data)

                def do_GET(self) -> None:
                    if self.path.rstrip("/") in ("", "/serve"):
                        self._reply(200, plane.summary())
                        return
                    self._reply(404, {"error": f"unknown path {self.path!r}"})

                def do_POST(self) -> None:
                    if not self.path.startswith("/serve/"):
                        self._reply(404, {"error": f"unknown path {self.path!r}"})
                        return
                    name = self.path[len("/serve/") :].strip("/")
                    length = int(self.headers.get("Content-Length") or 0)
                    raw = self.rfile.read(length) if length else b"null"
                    try:
                        payload = json.loads(raw.decode() or "null")
                    except ValueError:
                        self._reply(400, {"error": "body is not valid JSON"})
                        return
                    if isinstance(payload, dict) and set(payload) == {"payload"}:
                        payload = payload["payload"]
                    try:
                        handle = plane.handle(name)
                    except KeyError:
                        self._reply(404, {"error": f"no deployment named {name!r}"})
                        return
                    try:
                        result = handle.query(payload, timeout=timeout)
                    except BackpressureError as exc:
                        # Shed-with-429: the admission bound, not a failure.
                        self._reply(
                            429,
                            {"error": "backpressure", "detail": str(exc)},
                            headers=(("Retry-After", "0"),),
                        )
                    except GetTimeoutError as exc:
                        self._reply(504, {"error": "timeout", "detail": str(exc)})
                    except Exception as exc:
                        self._reply(
                            500, {"error": type(exc).__name__, "detail": str(exc)}
                        )
                    else:
                        self._reply(200, {"result": result})

            self._httpd = ThreadingHTTPServer((self._host, self._port), Handler)
            self._httpd.daemon_threads = True
            self._thread = make_thread(
                self._httpd.serve_forever, name="serve-http", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        with self._lock:
            httpd, thread = self._httpd, self._thread
            self._httpd = self._thread = None
        if httpd is not None:
            httpd.shutdown()
            httpd.server_close()
        if thread is not None:
            thread.join(timeout=2.0)
