"""The serve router: micro-batching, admission control, sibling retry.

One Router fronts one deployment's replica group (named actors created by
:mod:`repro.serve.deployment`).  Requests enter through :meth:`Router.submit`
and are answered through a :class:`ServeFuture`; between the two sits:

* **deadline-driven dynamic micro-batching** — a batch is cut when it
  reaches ``max_batch_size`` *or* when the oldest waiting request's
  latency budget (``batch_wait_timeout_s``) is half-spent, so a lone
  request never waits out the full window (the dynamic counterpart of
  Clipper's fixed batching, per "Real-Time ML: The Missing Pieces");
* **admission control** — the pending queue is bounded at
  ``max_queue_per_replica x alive replicas``; past it, ``submit`` sheds
  synchronously with :class:`~repro.common.errors.BackpressureError`
  (mapped to HTTP 429 by the ingress) instead of queueing unboundedly;
* **bounded per-replica in-flight** — each replica runs at most
  ``max_inflight_per_replica`` batches concurrently (pipelining hides the
  submit latency without overrunning a replica's mailbox);
* **sibling retry** — a batch whose replica died mid-flight is re-dispatched
  once per remaining sibling before the error reaches the callers;
* **metrics publication** — a background thread publishes queue depth,
  in-flight, and windowed p50/p99 latency into the GCS serve-report table
  (:meth:`~repro.gcs.client.GlobalControlStore.publish_serve_report`),
  the signal the replica autoscaler scales from.

Locking discipline: all router state lives under one condition; every
blocking runtime call (``.remote()`` submission, ``get``, GCS publication)
happens *outside* it.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Sequence, Tuple

from repro.common.errors import (
    ActorDiedError,
    BackpressureError,
    GetTimeoutError,
    NodeDiedError,
    TaskExecutionError,
)
from repro.common.lockwatch import make_condition, make_thread
from repro.common.metrics import percentile

_LATENCY_WINDOW = 2048  # completed-request latencies kept for p50/p99
_IDLE_WAIT = 0.05  # batcher/waiter backstop wait when nothing is due
_GET_BACKSTOP = 30.0  # a batch outstanding this long is failed, not waited


class ServeFuture:
    """The caller's side of one in-flight request (thread-safe)."""

    __slots__ = ("_event", "_value", "_error")

    def __init__(self) -> None:
        self._event = threading.Event()
        self._value: Any = None
        self._error: Optional[BaseException] = None

    def _set_result(self, value: Any) -> None:
        self._value = value
        self._event.set()

    def _set_error(self, error: BaseException) -> None:
        self._error = error
        self._event.set()

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None) -> Any:
        """Block for the reply; raises the replica's error, or
        :class:`~repro.common.errors.GetTimeoutError` on timeout."""
        if not self._event.wait(timeout):
            raise GetTimeoutError(f"serve request not completed within {timeout}s")
        if self._error is not None:
            raise self._error
        return self._value


class _Request:
    __slots__ = ("payload", "future", "enqueued_at")

    def __init__(self, payload: Any, future: ServeFuture, enqueued_at: float):
        self.payload = payload
        self.future = future
        self.enqueued_at = enqueued_at


class _ReplicaSlot:
    """Router-side view of one replica actor."""

    __slots__ = ("handle", "actor_name", "inflight", "dead")

    def __init__(self, handle: Any, actor_name: str):
        self.handle = handle
        self.actor_name = actor_name
        self.inflight = 0  # batches currently dispatched to this replica
        self.dead = False  # permanently dead (dead_forever), never routed


class Router:
    """Batches, bounds, dispatches, and observes one replica group."""

    def __init__(
        self,
        runtime: Any,
        deployment_name: str,
        *,
        version: int,
        max_batch_size: int,
        batch_wait_timeout_s: float,
        max_queue_per_replica: int,
        max_inflight_per_replica: int = 2,
        report_interval: Optional[float] = None,
    ):
        self._runtime = runtime
        self.deployment_name = deployment_name
        self.version = version
        self.max_batch_size = max_batch_size
        self.batch_wait_timeout_s = batch_wait_timeout_s
        self.max_queue_per_replica = max_queue_per_replica
        self.max_inflight_per_replica = max_inflight_per_replica
        self._report_interval = (
            runtime.config.serve_report_interval_seconds
            if report_interval is None
            else report_interval
        )

        self._cond = make_condition("serve.Router._cond")
        self._slots: List[_ReplicaSlot] = []
        self._pending: Deque[_Request] = deque()
        self._dispatched: Deque[Tuple[_ReplicaSlot, List[_Request], Any, int]] = deque()
        self._rr = itertools.count()  # tie-break rotation for slot choice
        self._latencies: Deque[float] = deque(maxlen=_LATENCY_WINDOW)
        self._report_seq = 0
        self._stopped = False

        # Counters (all under _cond).
        self.submitted = 0
        self.shed = 0
        self.completed = 0
        self.failed = 0
        self.batches = 0
        self.retries = 0

        self._batcher: Optional[threading.Thread] = None
        self._reporter: Optional[threading.Thread] = None
        self._waiters: List[threading.Thread] = []

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "Router":
        self._batcher = make_thread(
            self._batch_loop, name=f"serve-batcher-{self.deployment_name}", daemon=True
        )
        self._batcher.start()
        self._reporter = make_thread(
            self._report_loop, name=f"serve-report-{self.deployment_name}", daemon=True
        )
        self._reporter.start()
        self._ensure_waiters()
        return self

    def stop(self) -> None:
        """Idempotent: fail everything still queued and join the threads."""
        with self._cond:
            if self._stopped:
                return
            self._stopped = True
            pending = list(self._pending)
            self._pending.clear()
            dispatched = list(self._dispatched)
            self._dispatched.clear()
            self._cond.notify_all()
        error = RuntimeError(f"serve router for {self.deployment_name!r} stopped")
        for request in pending:
            request.future._set_error(error)
        for _slot, batch, _ref, _attempts in dispatched:
            for request in batch:
                request.future._set_error(error)
        current = threading.current_thread()
        for thread in [self._batcher, self._reporter, *self._waiters]:
            if thread is not None and thread is not current:
                thread.join(timeout=2.0)

    def _ensure_waiters(self) -> None:
        """Grow the waiter pool to cover every possible concurrent batch."""
        with self._cond:
            want = max(2, len(self._slots) * self.max_inflight_per_replica)
            have = len(self._waiters)
            missing = range(have, want) if not self._stopped else ()
        for index in missing:
            thread = make_thread(
                self._wait_loop,
                name=f"serve-waiter-{self.deployment_name}-{index}",
                daemon=True,
            )
            self._waiters.append(thread)
            thread.start()

    # ------------------------------------------------------------------
    # Replica membership (called by the deployment plane / autoscaler)
    # ------------------------------------------------------------------

    def set_replicas(
        self,
        replicas: Sequence[Tuple[Any, str]],
        version: Optional[int] = None,
        **config: Any,
    ) -> None:
        """Atomically swap the routed replica group (hot model-swap).

        In-flight batches keep their old slot objects and finish against
        the old replicas; only *new* batches see the new group.  Optional
        ``config`` keys (``max_batch_size``, ``batch_wait_timeout_s``,
        ``max_queue_per_replica``) retune batching for the new version.
        """
        slots = [_ReplicaSlot(handle, name) for handle, name in replicas]
        with self._cond:
            self._slots = slots
            if version is not None:
                self.version = version
            for key in ("max_batch_size", "batch_wait_timeout_s", "max_queue_per_replica"):
                if key in config and config[key] is not None:
                    setattr(self, key, config[key])
            self._cond.notify_all()
        self._ensure_waiters()

    def add_replica(self, handle: Any, actor_name: str) -> None:
        with self._cond:
            self._slots.append(_ReplicaSlot(handle, actor_name))
            self._cond.notify_all()
        self._ensure_waiters()

    def remove_replica(self, actor_name: Optional[str] = None) -> Optional[Tuple[Any, str]]:
        """Unroute one replica (the least-loaded, unless named) and return
        ``(handle, actor_name)`` so the caller can drain it."""
        with self._cond:
            candidates = [
                s for s in self._slots if actor_name is None or s.actor_name == actor_name
            ]
            if not candidates:
                return None
            slot = min(candidates, key=lambda s: (not s.dead, s.inflight))
            self._slots.remove(slot)
            self._cond.notify_all()
        return slot.handle, slot.actor_name

    def replica_infos(self) -> List[Dict[str, Any]]:
        """Per-replica liveness as the runtime sees it right now."""
        with self._cond:
            slots = list(self._slots)
        infos = []
        for slot in slots:
            state = self._runtime.actors.get_state(slot.handle.actor_id)
            dead_forever = state is None or state.dead_forever
            if dead_forever:
                slot.dead = True
            infos.append(
                {
                    "actor_name": slot.actor_name,
                    "actor_id": slot.handle.actor_id.hex()[:12],
                    "inflight": slot.inflight,
                    "dead": dead_forever,
                    "incarnation": state.incarnation if state is not None else None,
                }
            )
        return infos

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------

    def submit(self, payload: Any) -> ServeFuture:
        """Enqueue one request; sheds with BackpressureError when full."""
        future = ServeFuture()
        now = time.perf_counter()
        with self._cond:
            if self._stopped:
                raise RuntimeError(
                    f"serve router for {self.deployment_name!r} is stopped"
                )
            alive = sum(1 for s in self._slots if not s.dead) or 1
            limit = self.max_queue_per_replica * alive
            if len(self._pending) >= limit:
                self.shed += 1
                raise BackpressureError(
                    f"deployment {self.deployment_name!r} queue full "
                    f"({len(self._pending)} pending >= {limit}); back off and retry"
                )
            self.submitted += 1
            self._pending.append(_Request(payload, future, now))
            self._cond.notify_all()
        return future

    def query(self, payload: Any, timeout: Optional[float] = None) -> Any:
        return self.submit(payload).result(timeout)

    # ------------------------------------------------------------------
    # Batcher
    # ------------------------------------------------------------------

    def _choose_slot_locked(
        self, exclude: Optional[_ReplicaSlot] = None
    ) -> Optional[_ReplicaSlot]:
        available = [
            s
            for s in self._slots
            if not s.dead
            and s is not exclude
            and s.inflight < self.max_inflight_per_replica
        ]
        if not available:
            return None
        rotation = next(self._rr)
        return min(
            available,
            key=lambda s: (s.inflight, (self._slots.index(s) + rotation) % max(1, len(self._slots))),
        )

    def _cut_deadline_locked(self) -> Optional[float]:
        """When the oldest pending request forces a cut (half its budget)."""
        if not self._pending:
            return None
        return self._pending[0].enqueued_at + self.batch_wait_timeout_s * 0.5

    def _batch_loop(self) -> None:
        while True:
            with self._cond:
                slot: Optional[_ReplicaSlot] = None
                while not self._stopped:
                    now = time.perf_counter()
                    deadline = self._cut_deadline_locked()
                    if deadline is not None:
                        slot = self._choose_slot_locked()
                        if slot is not None and (
                            len(self._pending) >= self.max_batch_size
                            or now >= deadline
                        ):
                            break
                        # A full-or-due batch with no available replica (or
                        # a not-yet-due one) waits; completions notify.
                        wait_for = _IDLE_WAIT if slot is None else max(
                            0.001, deadline - now
                        )
                    else:
                        wait_for = _IDLE_WAIT
                    self._cond.wait(wait_for)
                if self._stopped:
                    return
                batch = [
                    self._pending.popleft()
                    for _ in range(min(self.max_batch_size, len(self._pending)))
                ]
                slot.inflight += 1
                self.batches += 1
            self._dispatch(slot, batch, attempts=1)

    def _dispatch(self, slot: _ReplicaSlot, batch: List[_Request], attempts: int) -> None:
        """Submit one batch to one replica (no router lock held)."""
        try:
            ref = slot.handle.handle_batch.remote([r.payload for r in batch])
        except Exception as exc:  # unknown/garbage-collected actor
            self._on_batch_failure(slot, batch, attempts, exc)
            return
        with self._cond:
            self._dispatched.append((slot, batch, ref, attempts))
            self._cond.notify_all()

    # ------------------------------------------------------------------
    # Waiters
    # ------------------------------------------------------------------

    def _wait_loop(self) -> None:
        while True:
            with self._cond:
                while not self._stopped and not self._dispatched:
                    self._cond.wait(_IDLE_WAIT)
                if self._stopped:
                    return
                slot, batch, ref, attempts = self._dispatched.popleft()
            try:
                values = self._get_result(slot, ref)
            except Exception as exc:
                self._on_batch_failure(slot, batch, attempts, exc)
                continue
            if not isinstance(values, (list, tuple)) or len(values) != len(batch):
                got = len(values) if isinstance(values, (list, tuple)) else type(values)
                self._on_batch_failure(
                    slot,
                    batch,
                    attempts,
                    TypeError(
                        f"deployment {self.deployment_name!r} returned {got} "
                        f"results for a batch of {len(batch)}"
                    ),
                    retryable=False,
                )
                continue
            now = time.perf_counter()
            with self._cond:
                slot.inflight = max(0, slot.inflight - 1)
                self.completed += len(batch)
                for request in batch:
                    self._latencies.append(now - request.enqueued_at)
                self._cond.notify_all()
            for request, value in zip(batch, values):
                request.future._set_result(value)

    def _get_result(self, slot: _ReplicaSlot, ref: Any) -> Any:
        """Fetch one batch's results, polling in short slices so a replica
        whose node died *after* the batch finished (its outputs lost with
        the node's store, so no error will ever arrive) is detected by
        state instead of wedging this waiter for the full backstop."""
        deadline = time.monotonic() + _GET_BACKSTOP
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise GetTimeoutError(
                    f"batch for {self.deployment_name!r} not completed "
                    f"within {_GET_BACKSTOP}s"
                )
            try:
                return self._runtime.get(
                    ref.object_id, timeout=min(0.5, remaining)
                )
            except GetTimeoutError:
                state = self._runtime.actors.get_state(slot.handle.actor_id)
                if state is None or state.dead_forever:
                    raise ActorDiedError(
                        f"replica {slot.actor_name!r} died with this "
                        "batch's results unstored"
                    ) from None

    @staticmethod
    def _is_replica_death(exc: BaseException) -> bool:
        if isinstance(exc, (ActorDiedError, NodeDiedError)):
            return True
        cause = getattr(exc, "cause", None)
        return isinstance(exc, TaskExecutionError) and isinstance(
            cause, (ActorDiedError, NodeDiedError)
        )

    def _on_batch_failure(
        self,
        slot: _ReplicaSlot,
        batch: List[_Request],
        attempts: int,
        exc: BaseException,
        retryable: bool = True,
    ) -> None:
        """Replica death mid-batch retries on a sibling; app errors and
        exhausted retries propagate to every caller in the batch."""
        state = self._runtime.actors.get_state(slot.handle.actor_id)
        gone = state is None or state.dead_forever
        # Whatever error surfaced, a dead replica's batch is retried on a
        # sibling (the error may be a lost-object symptom of the death).
        died = retryable and (self._is_replica_death(exc) or gone)
        target: Optional[_ReplicaSlot] = None
        with self._cond:
            slot.inflight = max(0, slot.inflight - 1)
            if gone:
                slot.dead = True
            if died and not self._stopped and attempts <= len(self._slots):
                target = self._choose_slot_locked(exclude=slot)
                if target is not None:
                    target.inflight += 1
                    self.retries += 1
            if target is None:
                self.failed += len(batch)
            self._cond.notify_all()
        if target is not None:
            self._dispatch(target, batch, attempts + 1)
            return
        for request in batch:
            request.future._set_error(exc)

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """A point-in-time snapshot (also the published report body)."""
        with self._cond:
            latencies = sorted(self._latencies)
            completed, batches = self.completed, self.batches
            snapshot = {
                "deployment": self.deployment_name,
                "version": self.version,
                "queue_depth": len(self._pending),
                "inflight_batches": sum(s.inflight for s in self._slots),
                "num_replicas": len(self._slots),
                "submitted": self.submitted,
                "completed": self.completed,
                "shed": self.shed,
                "failed": self.failed,
                "batches": self.batches,
                "retries": self.retries,
                "max_batch_size": self.max_batch_size,
                "batch_wait_timeout_s": self.batch_wait_timeout_s,
                "max_queue_per_replica": self.max_queue_per_replica,
            }
        replicas = self.replica_infos()
        alive = sum(1 for r in replicas if not r["dead"])
        snapshot["alive_replicas"] = alive
        snapshot["queue_depth_per_replica"] = snapshot["queue_depth"] / max(1, alive)
        snapshot["replicas"] = replicas
        if latencies:
            snapshot["p50_ms"] = percentile(latencies, 50) * 1e3
            snapshot["p99_ms"] = percentile(latencies, 99) * 1e3
            snapshot["mean_ms"] = sum(latencies) / len(latencies) * 1e3
        else:
            snapshot["p50_ms"] = snapshot["p99_ms"] = snapshot["mean_ms"] = None
        snapshot["avg_batch"] = completed / batches if batches else 0.0
        return snapshot

    def publish_report(self) -> Dict[str, Any]:
        """Publish one serve-report row into the GCS (reporter pattern:
        one row per deployment, versioned by seq/ts)."""
        row = self.stats()
        self._report_seq += 1
        row["seq"] = self._report_seq
        row["ts"] = time.time()
        self._runtime.gcs.publish_serve_report(self.deployment_name, row)
        return row

    def _report_loop(self) -> None:
        while True:
            with self._cond:
                self._cond.wait(self._report_interval)
                if self._stopped:
                    return
            self.publish_report()
