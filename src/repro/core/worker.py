"""Stateless worker execution of tasks.

A worker executes one task at a time: it pins and deserializes the task's
inputs from the local object store (they are guaranteed local by the local
scheduler), runs the function, and writes outputs back to the local store,
registering them in the GCS object table.

Error semantics follow Ray: an exception raised by a task is captured as a
:class:`TaskExecutionError` stored *in place of* the return value; every
``get`` of that object re-raises, and any downstream task consuming it
propagates the error instead of running.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.common.errors import (
    NodeDiedError,
    TaskCancelledError,
    TaskExecutionError,
)
from repro.common.serialization import serialize
from repro.core import context
from repro.core.task_spec import ArgRef, TaskSpec
from repro.gcs.tables import TaskStatus

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.runtime import Node, Runtime

RETRY_BACKOFF_CAP = 1.0  # upper bound on one exponential-backoff sleep


def should_retry(spec: TaskSpec, exc: BaseException, attempt: int) -> bool:
    """Whether a failed execution attempt should be retried in place.

    App-level retries (``max_retries=``) re-run the same task on the same
    node after an application exception — distinct from lineage
    reconstruction, which replays tasks whose *outputs* were lost to node
    failure.  Cancellation is never retried, and ``retry_exceptions=None``
    means any ``Exception`` qualifies (``BaseException``s like
    ``KeyboardInterrupt`` never do).
    """
    if attempt >= spec.max_retries:
        return False
    if isinstance(exc, TaskCancelledError):
        return False
    if spec.retry_exceptions is None:
        return isinstance(exc, Exception)
    return isinstance(exc, tuple(spec.retry_exceptions))


def retry_delay(runtime: "Runtime", attempt: int) -> float:
    """Exponential backoff before retry ``attempt`` (0-based), capped."""
    base = getattr(runtime.config, "retry_backoff_base", 0.02)
    return min(base * (2 ** attempt), RETRY_BACKOFF_CAP)


def resolve_args(
    node: "Node", spec: TaskSpec
) -> Tuple[List[Any], Dict[str, Any], Optional[Exception]]:
    """Deserialize the task's arguments from the local store.

    Reads go through the node's deserialized-value cache, and a per-spec
    memo guarantees an ObjectID referenced several times in one task's
    arguments is resolved (and deserialized) exactly once even when the
    cache is disabled or evicts between references.

    Returns (args, kwargs, input_error); ``input_error`` is the first
    upstream error found among the inputs, which the task must propagate.
    """
    memo: Dict[Any, Any] = {}

    def resolve(value: Any) -> Any:
        if isinstance(value, ArgRef):
            object_id = value.object_id
            if object_id in memo:
                return memo[object_id]
            resolved, found = node.store.load_value(object_id)
            if not found:
                raise RuntimeError(
                    f"input {object_id!r} not local on {node.node_id!r}"
                )
            memo[object_id] = resolved
            return resolved
        return value

    args: List[Any] = []
    kwargs: Dict[str, Any] = {}
    input_error: Optional[Exception] = None
    propagated = (TaskExecutionError, TaskCancelledError)
    for value in spec.args:
        resolved = resolve(value)
        if isinstance(resolved, propagated) and input_error is None:
            input_error = resolved
        args.append(resolved)
    for name, value in spec.kwargs:
        resolved = resolve(value)
        if isinstance(resolved, propagated) and input_error is None:
            input_error = resolved
        kwargs[name] = resolved
    return args, kwargs, input_error


def normalize_returns(spec: TaskSpec, output: Any) -> List[Any]:
    """Split a function's return value according to ``num_returns``."""
    if spec.num_returns == 0:
        return []
    if spec.num_returns == 1:
        return [output]
    if not isinstance(output, (tuple, list)) or len(output) != spec.num_returns:
        raise TypeError(
            f"{spec.function_name} declared num_returns={spec.num_returns} "
            f"but returned {type(output).__name__} of length "
            f"{len(output) if isinstance(output, (tuple, list)) else 'n/a'}"
        )
    return list(output)


def store_outputs(
    runtime: "Runtime",
    node: "Node",
    spec: TaskSpec,
    values: List[Any],
    publish: bool = True,
) -> list:
    """Write outputs to the local store and the GCS object table.

    All of one task's per-output GCS rows (location append + metadata put)
    go out as a single batched shard write.  Within the batch the location
    precedes the metadata for each object: once the object-table entry is
    visible, a concurrent reader that sees it with *no* locations may
    legitimately trigger reconstruction, so the location must already be
    published (or the store put must have genuinely failed).

    With ``publish=False`` only the local puts happen and the GCS rows are
    returned to the caller, which folds them into the task's single
    finish-time batch (``GlobalControlStore.finish_task``) together with
    the status update and the ``task_finished`` event.
    """
    entries = []
    for object_id, value in zip(spec.return_ids, values):
        serialized = serialize(value)
        stored = node.alive and node.store.put(object_id, serialized)
        entries.append((
            object_id,
            serialized.total_bytes,
            spec.task_id,
            node.node_id if stored else None,
        ))
    if publish:
        runtime.gcs.add_task_outputs(
            entries, batched=runtime.config.gcs_batched_writes
        )
    return entries


def pin_inputs(runtime: "Runtime", node: "Node", deps) -> None:
    """Pin each input, re-fetching any that was evicted after readiness.

    Pin-then-verify: once an object is pinned *while present*, LRU eviction
    cannot remove it, so the subsequent read is safe.  Any inputs evicted
    since readiness are re-fetched in parallel before the blocking loop
    joins them one by one.
    """
    runtime.fetcher.prefetch(deps, node)
    for dep in deps:
        while True:
            node.store.pin(dep)
            if node.store.contains(dep):
                break
            node.store.unpin(dep)
            runtime.fetch_to_node(dep, node)


def execute_task(
    runtime: "Runtime",
    node: "Node",
    spec: TaskSpec,
    held_resources: Dict[str, float],
    status_already_running: bool = False,
) -> None:
    """Run one stateless task on ``node`` (called on a worker thread)."""
    gcs = runtime.gcs
    # A replayed execution (reconstruction / node-death resubmission) may
    # re-run user code that already submitted children: its submissions
    # must take the checked path.  First executions submit children fresh.
    replay = runtime.is_replay_execution(spec.task_id)
    if not status_already_running:
        gcs.update_task_status(
            spec.task_id, TaskStatus.RUNNING, node_id=node.node_id
        )
    deps = spec.dependencies()
    started = time.perf_counter()
    status = TaskStatus.FINISHED
    entries: list = []
    node_died = False
    try:
        pin_inputs(runtime, node, deps)
        if runtime.is_cancelled(spec.task_id):
            # Cancelled after dispatch but before user code started.
            status = TaskStatus.CANCELLED
            cancel_error = TaskCancelledError(spec.task_id)
            values = [cancel_error] * spec.num_returns
        else:
            args, kwargs, input_error = resolve_args(node, spec)
            if input_error is not None:
                values = [input_error] * spec.num_returns
                if isinstance(input_error, TaskCancelledError):
                    status = TaskStatus.CANCELLED
            else:
                function = gcs.get_function(spec.function_id)
                attempt = 0
                while True:
                    try:
                        # Attempt > 0 is a replay even for a first execution:
                        # the failed attempt may already have submitted
                        # children before raising.
                        with context.execution_scope(
                            runtime,
                            node,
                            spec.task_id,
                            held_resources,
                            is_replay=replay or attempt > 0,
                        ):
                            output = function(*args, **kwargs)
                        values = normalize_returns(spec, output)
                        break
                    except TaskCancelledError as exc:
                        # Cooperative stop from inside the task body.
                        status = TaskStatus.CANCELLED
                        values = [exc] * spec.num_returns
                        break
                    except NodeDiedError:
                        # A blocking get inside the task noticed this
                        # node's death: never retried here — bubble to the
                        # quiet-exit path below.
                        raise
                    except BaseException as exc:  # noqa: BLE001 - error channel
                        if should_retry(spec, exc, attempt) and not (
                            runtime.is_cancelled(spec.task_id)
                        ):
                            runtime.record_task_retry(spec, exc, attempt)
                            time.sleep(retry_delay(runtime, attempt))
                            attempt += 1
                            continue
                        status = TaskStatus.FAILED
                        error = TaskExecutionError(spec.task_id, exc)
                        values = [error] * spec.num_returns
                        break
                if status is TaskStatus.FINISHED and runtime.cancel_forced(
                    spec.task_id
                ):
                    # force-cancelled while running: the work happened, but
                    # the contract is that every get() raises.
                    status = TaskStatus.CANCELLED
                    values = [TaskCancelledError(spec.task_id)] * spec.num_returns
        entries = store_outputs(runtime, node, spec, values, publish=False)
    except NodeDiedError:
        # The node died under this worker: kill_node has already
        # resubmitted the task, so the replacement execution owns the
        # outputs and the finish-state write.  Exit without recording
        # anything for this stranded attempt.
        node_died = True
    finally:
        for dep in deps:
            node.store.unpin(dep)
        if not node_died:
            duration = time.perf_counter() - started
            gcs.finish_task(
                spec.task_id,
                status,
                node.node_id,
                entries,
                event=(
                    "task_finished",
                    dict(
                        task=spec.task_id.short(),
                        name=spec.function_name,
                        node=node.node_id.short(),
                        start=started,
                        duration=duration,
                        status=status.value,
                        kind="task",
                    ),
                ),
                batched=runtime.config.gcs_batched_writes,
                spec=spec,
            )
            runtime.report_task_duration(duration)
            runtime.reconstruction.task_finished(spec.task_id)
            runtime.discard_cancellation_event(spec.task_id)
            if replay:
                runtime.clear_replay_hint(spec.task_id)
