"""Object replication between node stores.

If a task's inputs are not local, they are replicated to the local object
store before execution (paper Section 4.2.3).  The transfer service copies
serialized objects between stores, striping large objects across multiple
chunks — the analogue of Ray striping objects across multiple TCP
connections — and records the new location in the GCS.  When more than one
live replica of a large object exists, alternating stripes are read from
different replicas (the multi-connection replication of Section 5.1 /
Figure 9), and each buffer is written stripe-by-stripe into a single
preallocated destination allocation: one copy, no intermediate chunk list.

:class:`ObjectFetcher` implements the full Figure 7 control path for making
an object local: check the local store, look up locations in the GCS,
transfer if a copy exists, otherwise register a pub-sub callback on the
object's GCS entry, and fall back to lineage reconstruction when the object
existed but every copy has been lost.  ``prefetch`` fans a task's missing
inputs out to a bounded worker pool so they replicate in parallel; callers
join on the destination store's availability completions, exactly as for a
single fetch.

Both classes signal completions through the destination store: a
successful replication runs ``dst.store.put``, which sets the object's
availability :class:`~repro.common.events.Completion` and wakes every
blocked reader — there is no polling anywhere on this path.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.common.lockwatch import make_lock, make_rlock
from repro.common.faults import NULL_FAULTS
from repro.common.ids import NodeID, ObjectID
from repro.common.metrics import MetricsRegistry, NULL_REGISTRY
from repro.common.serialization import SerializedObject

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.runtime import Node
    from repro.gcs.client import GlobalControlStore

DEFAULT_CHUNK_BYTES = 1 << 20  # 1 MiB stripes
DEFAULT_CHUNK_DELAY_SECONDS = 0.002  # injected per-stripe stall
DEFAULT_PREFETCH_PARALLELISM = 8
MAX_STRIPE_SOURCES = 4


def _byte_view(buf) -> memoryview:
    view = buf if isinstance(buf, memoryview) else memoryview(buf)
    if view.format != "B":
        view = view.cast("B")
    return view


class ChunkDropped(Exception):
    """A fault-injected stripe loss: the in-progress copy is abandoned and
    restarted, like a lost-and-retransmitted network segment."""

    def __init__(self, chunk_index: int):
        self.chunk_index = chunk_index
        super().__init__(f"injected drop of chunk {chunk_index}")


def striped_copy(
    value: SerializedObject, chunk_bytes: int = DEFAULT_CHUNK_BYTES
) -> SerializedObject:
    """Copy a serialized object buffer-by-buffer in chunks.

    Functionally a deep copy; structured as chunked stripe copies so the
    copy path matches the system being modelled (and so the Fig 9 micro-
    benchmark measures a realistic memcpy loop rather than one opaque
    ``bytes()`` call).
    """
    return striped_copy_multi([value], chunk_bytes)


def striped_copy_multi(
    sources: Sequence[SerializedObject],
    chunk_bytes: int = DEFAULT_CHUNK_BYTES,
    chunk_hook: Optional[Callable[[int], Optional[str]]] = None,
    chunk_delay_seconds: float = DEFAULT_CHUNK_DELAY_SECONDS,
) -> SerializedObject:
    """Stripe-copy an object, reading alternating chunks from ``sources``.

    All sources hold the same immutable object (replicas on different
    nodes); chunk ``i`` of each buffer is read from source ``i % len``.
    Each destination buffer is one preallocated ``bytearray`` written in
    place — a single copy with no intermediate chunk list, at half the
    peak memory of the old join-of-chunks implementation.

    ``chunk_hook`` is the fault-injection probe: called once per stripe
    with the global stripe index, it may return ``"delay"`` (stall this
    stripe) or ``"drop"`` (raise :class:`ChunkDropped`; the caller
    retransmits by restarting the copy).
    """
    if chunk_bytes <= 0:
        raise ValueError("chunk_bytes must be positive")
    primary = sources[0]
    copied: List[memoryview] = []
    stripe = 0
    for index, buf in enumerate(primary.buffers):
        views = [_byte_view(src.buffers[index]) for src in sources]
        nbytes = views[0].nbytes
        out = bytearray(nbytes)
        out_view = memoryview(out)
        for offset in range(0, nbytes, chunk_bytes):
            if chunk_hook is not None:
                action = chunk_hook(stripe)
                if action == "drop":
                    raise ChunkDropped(stripe)
                if action == "delay":
                    time.sleep(chunk_delay_seconds)
            src = views[stripe % len(views)]
            out_view[offset : offset + chunk_bytes] = src[
                offset : offset + chunk_bytes
            ]
            stripe += 1
        # The store must never hand out writable views of resident memory.
        copied.append(out_view.toreadonly())
    return SerializedObject(primary.payload, copied, owned=True)


class TransferService:
    """Copies objects between node stores and updates the object table."""

    def __init__(
        self,
        gcs: "GlobalControlStore",
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
        metrics: Optional[MetricsRegistry] = None,
        max_stripe_sources: int = MAX_STRIPE_SOURCES,
        faults: Optional[object] = None,
    ):
        self.gcs = gcs
        self.chunk_bytes = chunk_bytes
        self.max_stripe_sources = max(1, max_stripe_sources)
        self.faults = faults if faults is not None else NULL_FAULTS
        self._nodes: Dict[NodeID, "Node"] = {}
        # register_node races live_locations/node from scheduler, fetcher,
        # and worker threads; all _nodes access goes through this lock.
        self._nodes_lock = make_lock("TransferService._nodes_lock")
        self.transfer_count = 0
        self.bytes_transferred = 0
        self._lock = make_lock("TransferService._lock")
        metrics = metrics or NULL_REGISTRY
        self._m_transfers = metrics.counter(
            "transfer_objects_total", "Inter-node object replications"
        )
        self._m_bytes = metrics.counter(
            "transfer_bytes_total", "Bytes replicated between node stores"
        )
        self._m_seconds = metrics.histogram(
            "transfer_seconds", "Wall-clock duration of one object replication"
        )
        self._m_multi_source = metrics.counter(
            "transfer_multi_source_total",
            "Replications striped across more than one live replica",
        )
        self._m_sources = metrics.histogram(
            "transfer_stripe_sources",
            "Replica count each replication striped from",
            buckets=(1, 2, 3, 4, 8),
        )

    def register_node(self, node: "Node") -> None:
        with self._nodes_lock:
            self._nodes[node.node_id] = node

    def node(self, node_id: NodeID) -> Optional["Node"]:
        with self._nodes_lock:
            return self._nodes.get(node_id)

    def _node_snapshot(self) -> Dict[NodeID, "Node"]:
        with self._nodes_lock:
            return dict(self._nodes)

    def live_locations(self, object_id: ObjectID) -> Set[NodeID]:
        """GCS locations filtered to nodes that are still alive."""
        locations = self.gcs.get_object_locations(object_id)
        nodes = self._node_snapshot()
        return {
            node_id
            for node_id in locations
            if (node := nodes.get(node_id)) is not None and node.alive
        }

    def transfer(self, object_id: ObjectID, dst: "Node") -> bool:
        """Replicate ``object_id`` into ``dst``'s store from any live copy.

        Large objects (more than one stripe) are read from up to
        ``max_stripe_sources`` live replicas in alternating chunks.
        Returns True on success; False if no live copy exists right now.
        """
        if dst.store.contains(object_id):
            return True
        nodes = self._node_snapshot()
        sources: List[SerializedObject] = []
        for node_id in sorted(self.gcs.get_object_locations(object_id)):
            src = nodes.get(node_id)
            if src is None or not src.alive or src is dst:
                continue
            value = src.store.get(object_id)
            if value is None:
                # Stale GCS entry (e.g. evicted between lookup and read).
                continue
            sources.append(value)
            if len(sources) >= self.max_stripe_sources:
                break
        if not sources:
            return False
        started = time.monotonic()
        largest = max(
            (len(b) if isinstance(b, bytes) else memoryview(b).nbytes
             for b in sources[0].buffers),
            default=0,
        )
        if largest <= self.chunk_bytes:
            sources = sources[:1]  # single stripe: nothing to parallelize
        if self.faults.enabled:
            # Each (object, chunk) drops at most once, so the retransmit
            # loop terminates; a drop restarts the whole striped copy, as
            # a lost segment would force at the transport layer.
            hook = lambda ci: self.faults.chunk_fault(object_id, ci)  # noqa: E731
            delay = getattr(
                self.faults, "chunk_delay_seconds", DEFAULT_CHUNK_DELAY_SECONDS
            )
            while True:
                try:
                    copy = striped_copy_multi(
                        sources,
                        self.chunk_bytes,
                        chunk_hook=hook,
                        chunk_delay_seconds=delay,
                    )
                    break
                except ChunkDropped:
                    continue
        else:
            copy = striped_copy_multi(sources, self.chunk_bytes)
        stored = dst.store.put(object_id, copy)
        if stored:
            with self._lock:
                self.transfer_count += 1
                self.bytes_transferred += copy.total_bytes
            self._m_transfers.inc()
            self._m_bytes.inc(copy.total_bytes)
            self._m_seconds.observe(time.monotonic() - started)
            self._m_sources.observe(len(sources))
            if len(sources) > 1:
                self._m_multi_source.inc()
            self.gcs.add_object_location(object_id, dst.node_id)
        return True


class ObjectFetcher:
    """Makes objects local to a node, by transfer or reconstruction."""

    def __init__(
        self,
        gcs: "GlobalControlStore",
        transfer: TransferService,
        metrics: Optional[MetricsRegistry] = None,
        prefetch_parallelism: int = DEFAULT_PREFETCH_PARALLELISM,
    ):
        self.gcs = gcs
        self.transfer = transfer
        self.prefetch_parallelism = prefetch_parallelism
        # reconstruct(object_id) is installed by the runtime after the
        # reconstruction manager exists (breaks a construction cycle).
        self.reconstruct: Optional[Callable[[ObjectID], None]] = None
        # lineage_known(object_id) — installed by the runtime — answers
        # "does the local task graph know this object's producing task?"
        # without touching the GCS.  See ensure_local's light path.
        self.lineage_known: Optional[Callable[[ObjectID], bool]] = None
        self._inflight: Dict[Tuple[NodeID, ObjectID], float] = {}
        self._inflight_lock = make_lock("ObjectFetcher._inflight_lock")
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_lock = make_lock("ObjectFetcher._pool_lock")
        metrics = metrics or NULL_REGISTRY
        self._m_fetch_seconds = metrics.histogram(
            "fetch_seconds",
            "Latency from a fetch request to the object being local",
        )
        self._m_prefetch_requests = metrics.counter(
            "prefetch_requests_total", "Inputs handed to the prefetch pool"
        )
        self._m_prefetch_batch = metrics.histogram(
            "prefetch_batch_size",
            "Missing inputs prefetched in parallel per task",
            buckets=(1, 2, 4, 8, 16, 32, 64, 128),
        )
        self._m_prefetch_errors = metrics.counter(
            "prefetch_errors_total",
            "Prefetch attempts that raised (recovered by the blocking path)",
        )

    # -- parallel input prefetch --------------------------------------------

    def _executor(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.prefetch_parallelism,
                    thread_name_prefix="prefetch",
                )
            return self._pool

    def _guarded_ensure(self, object_id: ObjectID, node: "Node") -> None:
        try:
            self.ensure_local(object_id, node)
        except Exception:  # noqa: BLE001 - blocking readers re-arm the fetch
            self._m_prefetch_errors.inc()

    def ensure_local_async(self, object_id: ObjectID, node: "Node") -> None:
        """``ensure_local`` on the prefetch pool (inline when the pool is
        disabled).  Errors are swallowed: every blocking reader re-issues
        ``ensure_local`` from its backstop, so a failed prefetch only costs
        latency, never correctness."""
        if self.prefetch_parallelism <= 0:
            self.ensure_local(object_id, node)
            return
        self._executor().submit(self._guarded_ensure, object_id, node)

    def prefetch(self, object_ids: Sequence[ObjectID], node: "Node") -> int:
        """Start parallel fetches for every non-local ID; returns how many
        were issued.  Non-blocking: join on the store's availability
        completions (``fetch_to_node`` / ``on_available``)."""
        missing = [oid for oid in object_ids if not node.store.contains(oid)]
        if not missing:
            return 0
        self._m_prefetch_batch.observe(len(missing))
        for object_id in missing:
            self._m_prefetch_requests.inc()
            self.ensure_local_async(object_id, node)
        return len(missing)

    def close(self) -> None:
        """Shut down the prefetch pool (runtime shutdown)."""
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    # -- the Figure 7 fetch path --------------------------------------------

    def forget_node(self, node_id: NodeID) -> None:
        """Drop in-flight fetch markers bound to a dead node.

        The marker is normally cleared by the destination store's
        availability callback — which will never fire once the store is
        dropped.  Because a restarted node reuses its NodeID, a stale
        marker would permanently swallow every later fetch of the same
        object to the reborn node.
        """
        with self._inflight_lock:
            for key in [k for k in self._inflight if k[0] == node_id]:
                del self._inflight[key]

    def inflight_count(self, node_id: NodeID) -> int:
        """Number of fetches currently in flight *toward* ``node_id``.

        Sampled by the per-node reporter as a transfer-pressure signal.
        """
        with self._inflight_lock:
            return sum(1 for k in self._inflight if k[0] == node_id)

    def ensure_local(self, object_id: ObjectID, node: "Node") -> None:
        """Arrange for ``object_id`` to (eventually) appear in ``node``'s
        store.  Non-blocking: callers observe arrival through
        ``node.store.on_available`` / ``availability_event``."""
        if not node.alive or node.store.contains(object_id):
            return
        key = (node.node_id, object_id)
        with self._inflight_lock:
            if key in self._inflight:
                return
            self._inflight[key] = time.monotonic()

        def finished(_oid: ObjectID) -> None:
            with self._inflight_lock:
                started = self._inflight.pop(key, None)
            if started is not None:
                self._m_fetch_seconds.observe(time.monotonic() - started)

        node.store.on_available(object_id, finished)

        # Subscribe *before* checking locations so a concurrent creation
        # cannot be missed (Figure 7b step 2).
        # RLock: performing the transfer publishes the *new* location, which
        # re-enters our own subscription callback on this thread.
        state = {"done": False}
        lock = make_rlock("ObjectFetcher.ensure_local.lock")

        def try_transfer() -> bool:
            if not node.alive:
                # Stop trying; the node is gone.  Release the in-flight
                # marker ourselves — no arrival will ever clear it, and the
                # NodeID may be reborn via restart_node.
                with self._inflight_lock:
                    self._inflight.pop(key, None)
                return True
            if node.store.contains(object_id):
                return True
            return self.transfer.transfer(object_id, node)

        def on_location_update(op: str, _node_id: NodeID) -> None:
            if op == "add":
                with lock:
                    if state["done"]:
                        return
                    if try_transfer():
                        state["done"] = True
                        unsubscribe()
                return
            # A retraction (node death / eviction) may have removed the
            # last live copy *after* our initial reconstruct check ran —
            # e.g. the producer finished on a node that then died before
            # the copy landed here.  Without this, every waiter is
            # subscribed only to future "add" events that will never come.
            with lock:
                if state["done"]:
                    return
            if (
                not self.transfer.live_locations(object_id)
                and self.reconstruct is not None
            ):
                self.reconstruct(object_id)

        unsubscribe = self.gcs.subscribe_object_locations(
            object_id, on_location_update
        )
        # Light path — checked *after* subscribing, so a publication that
        # raced ahead of the subscription is visible in the hint (writers
        # set the hint before the location append).  No location ever
        # published plus locally-known lineage means the object is still
        # being produced: the authoritative location read would come back
        # empty and the reconstruct probe would find no entry, so both
        # remote round-trips are skipped and the subscription (or the
        # producing node's own store) announces the object when it exists.
        if (
            self.lineage_known is not None
            and not self.gcs.has_location_hint(object_id)
            and self.lineage_known(object_id)
        ):
            return
        with lock:
            if try_transfer():
                state["done"] = True
                unsubscribe()
                return
            # No live copy.  If the object has lineage and its producing
            # task is not already running, trigger reconstruction.
            if self.reconstruct is not None:
                self.reconstruct(object_id)
