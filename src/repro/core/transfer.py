"""Object replication between node stores.

If a task's inputs are not local, they are replicated to the local object
store before execution (paper Section 4.2.3).  The transfer service copies
serialized objects between stores, striping large objects across multiple
chunks — the analogue of Ray striping objects across multiple TCP
connections — and records the new location in the GCS.

:class:`ObjectFetcher` implements the full Figure 7 control path for making
an object local: check the local store, look up locations in the GCS,
transfer if a copy exists, otherwise register a pub-sub callback on the
object's GCS entry, and fall back to lineage reconstruction when the object
existed but every copy has been lost.

Both classes signal completions through the destination store: a
successful replication runs ``dst.store.put``, which sets the object's
availability :class:`~repro.common.events.Completion` and wakes every
blocked reader — there is no polling anywhere on this path.
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING, Callable, Dict, Optional, Set, Tuple

from repro.common.ids import NodeID, ObjectID
from repro.common.metrics import MetricsRegistry, NULL_REGISTRY
from repro.common.serialization import SerializedObject

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.runtime import Node
    from repro.gcs.client import GlobalControlStore

DEFAULT_CHUNK_BYTES = 1 << 20  # 1 MiB stripes


def striped_copy(value: SerializedObject, chunk_bytes: int = DEFAULT_CHUNK_BYTES) -> SerializedObject:
    """Copy a serialized object buffer-by-buffer in chunks.

    Functionally a deep copy; structured as chunked stripe copies so the
    copy path matches the system being modelled (and so the Fig 9 micro-
    benchmark measures a realistic memcpy loop rather than one opaque
    ``bytes()`` call).
    """
    copied = []
    for buf in value.buffers:
        view = memoryview(buf)
        parts = [
            bytes(view[offset : offset + chunk_bytes])
            for offset in range(0, len(view), chunk_bytes)
        ]
        copied.append(b"".join(parts))
    return SerializedObject(value.payload, copied)


class TransferService:
    """Copies objects between node stores and updates the object table."""

    def __init__(
        self,
        gcs: "GlobalControlStore",
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.gcs = gcs
        self.chunk_bytes = chunk_bytes
        self._nodes: Dict[NodeID, "Node"] = {}
        self.transfer_count = 0
        self.bytes_transferred = 0
        self._lock = threading.Lock()
        metrics = metrics or NULL_REGISTRY
        self._m_transfers = metrics.counter(
            "transfer_objects_total", "Inter-node object replications"
        )
        self._m_bytes = metrics.counter(
            "transfer_bytes_total", "Bytes replicated between node stores"
        )
        self._m_seconds = metrics.histogram(
            "transfer_seconds", "Wall-clock duration of one object replication"
        )

    def register_node(self, node: "Node") -> None:
        self._nodes[node.node_id] = node

    def node(self, node_id: NodeID) -> Optional["Node"]:
        return self._nodes.get(node_id)

    def live_locations(self, object_id: ObjectID) -> Set[NodeID]:
        """GCS locations filtered to nodes that are still alive."""
        locations = self.gcs.get_object_locations(object_id)
        return {
            node_id
            for node_id in locations
            if (node := self._nodes.get(node_id)) is not None and node.alive
        }

    def transfer(self, object_id: ObjectID, dst: "Node") -> bool:
        """Replicate ``object_id`` into ``dst``'s store from any live copy.

        Returns True on success; False if no live copy exists right now.
        """
        if dst.store.contains(object_id):
            return True
        for node_id in sorted(self.live_locations(object_id)):
            src = self._nodes.get(node_id)
            if src is None or not src.alive:
                continue
            value = src.store.get(object_id)
            if value is None:
                # Stale GCS entry (e.g. evicted between lookup and read).
                continue
            started = time.monotonic()
            copy = striped_copy(value, self.chunk_bytes)
            stored = dst.store.put(object_id, copy)
            if stored:
                with self._lock:
                    self.transfer_count += 1
                    self.bytes_transferred += copy.total_bytes
                self._m_transfers.inc()
                self._m_bytes.inc(copy.total_bytes)
                self._m_seconds.observe(time.monotonic() - started)
                self.gcs.add_object_location(object_id, dst.node_id)
            return True
        return False


class ObjectFetcher:
    """Makes objects local to a node, by transfer or reconstruction."""

    def __init__(
        self,
        gcs: "GlobalControlStore",
        transfer: TransferService,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.gcs = gcs
        self.transfer = transfer
        # reconstruct(object_id) is installed by the runtime after the
        # reconstruction manager exists (breaks a construction cycle).
        self.reconstruct: Optional[Callable[[ObjectID], None]] = None
        self._inflight: Dict[Tuple[NodeID, ObjectID], float] = {}
        self._inflight_lock = threading.Lock()
        metrics = metrics or NULL_REGISTRY
        self._m_fetch_seconds = metrics.histogram(
            "fetch_seconds",
            "Latency from a fetch request to the object being local",
        )

    def ensure_local(self, object_id: ObjectID, node: "Node") -> None:
        """Arrange for ``object_id`` to (eventually) appear in ``node``'s
        store.  Non-blocking: callers observe arrival through
        ``node.store.on_available`` / ``availability_event``."""
        if node.store.contains(object_id):
            return
        key = (node.node_id, object_id)
        with self._inflight_lock:
            if key in self._inflight:
                return
            self._inflight[key] = time.monotonic()

        def finished(_oid: ObjectID) -> None:
            with self._inflight_lock:
                started = self._inflight.pop(key, None)
            if started is not None:
                self._m_fetch_seconds.observe(time.monotonic() - started)

        node.store.on_available(object_id, finished)

        # Subscribe *before* checking locations so a concurrent creation
        # cannot be missed (Figure 7b step 2).
        # RLock: performing the transfer publishes the *new* location, which
        # re-enters our own subscription callback on this thread.
        state = {"done": False}
        lock = threading.RLock()

        def try_transfer() -> bool:
            if not node.alive:
                return True  # stop trying; the node is gone
            if node.store.contains(object_id):
                return True
            return self.transfer.transfer(object_id, node)

        def on_location_update(op: str, _node_id: NodeID) -> None:
            if op != "add":
                return
            with lock:
                if state["done"]:
                    return
                if try_transfer():
                    state["done"] = True
                    unsubscribe()

        unsubscribe = self.gcs.subscribe_object_locations(
            object_id, on_location_update
        )
        with lock:
            if try_transfer():
                state["done"] = True
                unsubscribe()
                return
            # No live copy.  If the object has lineage and its producing
            # task is not already running, trigger reconstruction.
            if self.reconstruct is not None:
                self.reconstruct(object_id)
