"""Per-thread execution context.

Every thread that can call the API — the driver thread, worker threads
executing tasks, actor threads executing methods — carries a context
identifying the runtime, the node it runs on, the task on whose behalf it
executes, and the resources it currently holds.  The context provides:

* **deterministic child task IDs** (parent task ID + submission index), so
  replaying a task regenerates identical lineage;
* **blocked-worker resource release**: a worker that blocks in ``get`` /
  ``wait`` returns its CPUs to the node so other tasks can run, preventing
  the classic nested-parallelism deadlock (Ray does the same).
"""

from __future__ import annotations

import contextlib
import threading
from typing import TYPE_CHECKING, Dict, Optional

from repro.common.ids import NodeID, TaskID

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.runtime import Node, Runtime


class _ContextState(threading.local):
    def __init__(self):
        self.runtime: Optional["Runtime"] = None
        self.node: Optional["Node"] = None
        self.task_id: Optional[TaskID] = None
        self.submission_index: int = 0
        self.put_index: int = 0
        self.held_resources: Optional[Dict[str, float]] = None
        self.is_replay: bool = False


_state = _ContextState()


def current_runtime() -> Optional["Runtime"]:
    return _state.runtime


def current_node() -> Optional["Node"]:
    return _state.node


def current_task_id() -> Optional[TaskID]:
    return _state.task_id


def next_submission_index() -> int:
    index = _state.submission_index
    _state.submission_index += 1
    return index


def next_put_index() -> int:
    index = _state.put_index
    _state.put_index += 1
    return index


def in_replay() -> bool:
    """Is the current execution a replay (re-execution of a task that may
    already have submitted children)?  Child submissions made under a
    replay scope must take the checked (existence-verified) submit path;
    first-time submissions are guaranteed fresh and may skip the check."""
    return _state.is_replay


@contextlib.contextmanager
def execution_scope(runtime, node, task_id, held_resources=None, is_replay=False):
    """Install the context for the duration of one task/method execution."""
    previous = (
        _state.runtime,
        _state.node,
        _state.task_id,
        _state.submission_index,
        _state.put_index,
        _state.held_resources,
        _state.is_replay,
    )
    _state.runtime = runtime
    _state.node = node
    _state.task_id = task_id
    _state.submission_index = 0
    _state.put_index = 0
    _state.held_resources = held_resources
    _state.is_replay = is_replay
    try:
        yield
    finally:
        (
            _state.runtime,
            _state.node,
            _state.task_id,
            _state.submission_index,
            _state.put_index,
            _state.held_resources,
            _state.is_replay,
        ) = previous


@contextlib.contextmanager
def blocked():
    """Release held resources while blocking; reacquire before resuming.

    Used by ``get``/``wait`` so that a worker waiting on child tasks does
    not hold CPUs the children need.
    """
    node = _state.node
    resources = _state.held_resources
    if node is None or not resources:
        yield
        return
    node.resources.release(resources)
    try:
        yield
    finally:
        node.resources.acquire(resources)
