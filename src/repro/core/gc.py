"""Lineage garbage collection.

The paper lists this as its active limitation (Section 7): "storing
lineage for each task requires the implementation of garbage collection
policies to bound storage costs in the GCS, a feature we are actively
developing."  This module implements that feature:

* :func:`Runtime.free`-style explicit deletion of objects (and optionally
  their lineage) — for data the application knows it will never need;
* :class:`LineageGarbageCollector` — given the set of object refs the
  application still holds, retains exactly the lineage needed to
  reconstruct them (their ancestor closure in the task graph) and deletes
  every other finished task record from the GCS.

Safety property: an object remains reconstructible iff it is in the live
set's ancestor closure.  Tests assert both directions.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, List, Set

from repro.common.ids import ObjectID, TaskID
from repro.gcs.client import _OBJ, _OBJ_LOC, _TASK
from repro.gcs.tables import TaskStatus

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.runtime import Runtime


def free_objects(
    runtime: "Runtime",
    object_ids: Iterable[ObjectID],
    delete_lineage: bool = False,
) -> int:
    """Drop every copy of the given objects from every store.

    With ``delete_lineage`` the producing tasks' records are removed too,
    so the objects become permanently unrecoverable (and their GCS rows
    stop consuming memory).  Returns the number of store copies dropped.
    """
    dropped = 0
    for object_id in object_ids:
        for node in runtime.nodes():
            if node.store.delete(object_id):
                runtime.gcs.remove_object_location(object_id, node.node_id)
                dropped += 1
        if delete_lineage:
            task_id = runtime.gcs.creating_task(object_id)
            runtime.gcs.kv.delete((_OBJ, object_id))
            runtime.gcs.kv.delete((_OBJ_LOC, object_id))
            if task_id is not None:
                runtime.gcs.kv.delete((_TASK, task_id))
    return dropped


class LineageGarbageCollector:
    """Bound GCS lineage to what live references can still need."""

    def __init__(self, runtime: "Runtime"):
        self.runtime = runtime
        self.collected_tasks = 0
        self.collected_objects = 0

    def live_task_closure(self, live_objects: Iterable[ObjectID]) -> Set[TaskID]:
        """Every task in the ancestor closure of the live objects."""
        keep: Set[TaskID] = set()
        for object_id in live_objects:
            keep |= self.runtime.graph.ancestors(object_id)
        return keep

    def collect(self, live_objects: Iterable[ObjectID]) -> int:
        """Delete finished-task lineage not needed by ``live_objects``.

        Actor tasks are never collected here: their chain is the actor's
        recovery state for as long as the actor lives.  Returns the number
        of task records removed.
        """
        live_objects = list(live_objects)
        keep = self.live_task_closure(live_objects)
        gcs = self.runtime.gcs
        removed = 0
        removed_tasks: List[TaskID] = []
        for key in gcs.kv.keys():
            if not (isinstance(key, tuple) and key[0] == _TASK):
                continue
            entry = gcs.kv.get(key)
            if entry is None or entry.task_id in keep:
                continue
            if entry.status not in (TaskStatus.FINISHED, TaskStatus.FAILED):
                continue  # in-flight lineage is always retained
            spec = entry.spec
            if spec is not None and getattr(spec, "actor_id", None) is not None:
                continue
            gcs.kv.delete(key)
            removed_tasks.append(entry.task_id)
            removed += 1
        # Object metadata whose producer was collected is dead weight too
        # (the objects can no longer be reconstructed once evicted).
        removed_set = set(removed_tasks)
        for key in gcs.kv.keys():
            if not (isinstance(key, tuple) and key[0] == _OBJ):
                continue
            meta = gcs.kv.get(key)
            if meta is None:
                continue
            _size, task_id = meta
            if task_id in removed_set:
                object_id = key[1]
                if not self.runtime.transfer.live_locations(object_id):
                    gcs.kv.delete(key)
                    gcs.kv.delete((_OBJ_LOC, object_id))
                    self.collected_objects += 1
        self.collected_tasks += removed
        return removed
