"""Lineage-based reconstruction of lost objects.

When a needed object has no live copy — its node died, or it was evicted
under memory pressure — Ray recovers it by replaying its lineage: the task
that produced it (recorded durably in the GCS task table) is resubmitted,
and its own missing inputs are recovered recursively through the same path
(paper Section 4.2.3, Figure 11a).

For objects produced by actor methods, reconstruction goes through the
stateful-edge chain instead: the actor is rebuilt from its last checkpoint
and the subsequent methods are replayed (Figure 11b).
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Set

from repro.common.lockwatch import make_lock
from repro.common.ids import ObjectID, TaskID
from repro.gcs.tables import TaskStatus

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.runtime import Runtime


class ReconstructionManager:
    """Decides when and how to re-execute lineage."""

    def __init__(self, runtime: "Runtime"):
        self.runtime = runtime
        self._lock = make_lock("ReconstructionManager._lock")
        self._inflight: Set[TaskID] = set()
        self.reconstructed_tasks = 0
        self.reconstructed_objects = 0
        self._m_tasks = runtime.metrics.counter(
            "reconstruction_tasks_total", "Tasks re-executed to recover objects"
        )
        self._m_objects = runtime.metrics.counter(
            "reconstruction_objects_total",
            "Objects recovered through lineage replay",
        )

    def task_finished(self, task_id: TaskID) -> None:
        with self._lock:
            self._inflight.discard(task_id)

    def maybe_reconstruct(self, object_id: ObjectID) -> None:
        """Reconstruct ``object_id`` if it is lost and has lineage.

        No-op when the object is still being produced, already has a live
        copy, or reconstruction is already in flight.
        """
        runtime = self.runtime
        entry = runtime.gcs.get_object_entry(object_id)
        if entry is None:
            return  # never created yet — the producing task is still ahead
        if runtime.transfer.live_locations(object_id):
            return  # a copy exists; the fetch path will pick it up
        task_id = entry.task_id
        if task_id is None:
            return  # a ``put`` root with no lineage; get() raises ObjectLost
        # lookup_task falls back to flushed on-disk lineage (Fig 10b's
        # snapshot), so collected records remain replayable.
        task_entry = runtime.lookup_task(task_id)
        if task_entry is None:
            return
        spec = task_entry.spec
        if spec.actor_id is not None:
            # Stateful lineage: rebuild the actor and replay its chain.
            runtime.actors.reconstruct_for_object(spec.actor_id)
            return
        with self._lock:
            if task_id in self._inflight:
                return
            if task_entry.status in (
                TaskStatus.PENDING,
                TaskStatus.SCHEDULED,
                TaskStatus.RUNNING,
            ):
                node = (
                    runtime.transfer.node(task_entry.node_id)
                    if task_entry.node_id
                    else None
                )
                if node is not None and node.alive:
                    return  # in flight on a live node; just wait
            self._inflight.add(task_id)
            self.reconstructed_tasks += 1
            self.reconstructed_objects += spec.num_returns
        self._m_tasks.inc()
        self._m_objects.inc(spec.num_returns)
        runtime.gcs.update_task_status(task_id, TaskStatus.PENDING)
        runtime.gcs.record_event(
            "task_reconstructed",
            task=task_id.hex()[:8],
            name=spec.function_name,
        )
        # The replayed execution may re-submit children that already have
        # task rows: flag it so its submissions take the checked path.
        runtime.mark_replay(task_id)
        # Route through the global scheduler: the original node may be gone,
        # and placement will recursively pull (and if needed reconstruct)
        # the task's own inputs.
        runtime.route_and_place(spec)
