"""The Ray-like runtime: a multi-node cluster in one process.

Every node has its own resource pool, object store, and local scheduler
(with worker threads); nodes share nothing except the GCS.  Objects are
physically copied between node stores by the transfer service.  This makes
the control-plane protocols of the paper — bottom-up scheduling, GCS-
mediated object location lookup, lineage reconstruction, actor replay —
*real*, executable code paths rather than simulation, at laptop scale.

The scale experiments (millions of tasks/second, GB/s transfers) live in
:mod:`repro.sim`, which runs the same policies under a discrete-event
clock.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from dataclasses import MISSING, dataclass, field, fields
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.common import lockwatch
from repro.common.lockwatch import make_lock
from repro.common.errors import (
    GetTimeoutError,
    NodeDiedError,
    ObjectLostError,
    RuntimeNotInitializedError,
    TaskCancelledError,
    TaskExecutionError,
)
from repro.common.events import BACKSTOP_INTERVAL, Completion, WaitStats, wait_any
from repro.common.faults import NULL_FAULTS
from repro.common.metrics import MetricsRegistry
from repro.common.ids import (
    ActorID,
    FunctionID,
    NodeID,
    ObjectID,
    TaskID,
    deterministic_task_id,
)
from repro.common.serialization import serialize
from repro.core import context
from repro.core.actor import ActorManager
from repro.core.global_scheduler import GlobalScheduler
from repro.core.local_scheduler import LocalScheduler
from repro.core.object_store import LocalObjectStore
from repro.core.reconstruction import ReconstructionManager
from repro.core import scheduling
from repro.core.resources import ResourcePool, normalize_resources
from repro.core.task_graph import TaskGraph
from repro.core.task_spec import TaskSpec
from repro.core.transfer import ObjectFetcher, TransferService
from repro.core.worker import execute_task
from repro.gcs.client import GlobalControlStore
from repro.gcs.tables import TaskStatus


@dataclass
class RuntimeConfig:
    """Cluster shape and policy knobs for the in-process runtime."""

    num_nodes: int = 2
    num_cpus_per_node: float = 4
    num_gpus_per_node: float = 0
    custom_resources: Dict[str, float] = field(default_factory=dict)
    object_store_capacity_bytes: Optional[int] = None
    # When set, LRU eviction spills to per-node subdirectories here instead
    # of dropping copies (paper §4.2.3: "evict them as needed to disk").
    object_spill_directory: Optional[str] = None
    gcs_shards: int = 4
    gcs_replicas: int = 1
    num_global_schedulers: int = 1
    locality_aware: bool = True
    spillback_threshold: int = 16
    scheduler_delay: float = 0.0  # Fig 12b-style latency injection
    # Pluggable scheduling (repro.core.scheduling): the placement policy
    # driven by every global scheduler replica, as a registry name
    # ("lowest_wait", "locality", "power_of_two", "round_robin",
    # "central_queue"), a SchedulerPolicy subclass, or an instance.  None
    # selects the paper's lowest-estimated-waiting-time default, honoring
    # ``locality_aware``.  Names/classes get a fresh instance per replica;
    # an instance is shared by all replicas.
    scheduler_policy: Optional[Any] = None
    # The local schedulers' forward-to-global decision: a registry name
    # ("threshold", "always", "never"), a SpillbackPolicy subclass, or an
    # instance.  None selects the classic backlog threshold
    # (``spillback_threshold``).
    spillback_policy: Optional[Any] = None
    # GCS flushing (Fig 10b): when set, finished-task lineage is moved to
    # this file whenever in-memory entries exceed the threshold.  Flushed
    # lineage remains usable: reconstruction falls back to the disk
    # snapshot for collected task records.
    gcs_flush_path: Optional[str] = None
    gcs_flush_threshold: int = 10_000
    # Observability layer: the metrics registry (counters/gauges/histograms
    # maintained by every hot layer) and task-lifecycle trace events
    # (task_submitted / task_scheduled / task_inputs_ready in the GCS event
    # log).  Both default on; the micro benchmark measures their cost.
    metrics_enabled: bool = True
    trace_events_enabled: bool = True
    # Zero-copy data plane knobs.  The deserialized-value cache gives
    # repeated same-node reads of an immutable object Plasma-style
    # zero-(re)work semantics; the prefetch pool replicates a task's
    # missing inputs in parallel; batched GCS writes coalesce a task's
    # per-output table updates into one shard write.  All three default
    # on; `scripts/bench_dataplane.py` measures each against the off
    # configuration.
    value_cache_enabled: bool = True
    value_cache_capacity_bytes: Optional[int] = 256 * 1024 * 1024
    prefetch_parallelism: int = 8
    gcs_batched_writes: bool = True
    # Task-throughput fast path knobs (both default on; bench_throughput.py
    # measures each against the off configuration).  ``submit_fastpath``
    # lets a local scheduler dispatch a locally-submitted task straight to
    # an idle pooled worker when its queue is empty, deps are local, and
    # resources fit — skipping the dispatcher handoff and the separate
    # SCHEDULED status write.  ``worker_pool`` reuses persistent worker
    # threads instead of spawning one thread per task.
    submit_fastpath: bool = True
    worker_pool: bool = True
    # Client-side GCS caching: the write-through function cache and the
    # location-publication hint that lets fetchers with local lineage skip
    # the authoritative location read while an object is still being
    # produced.  Off reproduces the every-read-is-remote control plane.
    gcs_client_cache: bool = True
    # Deterministic fault injection: a FaultSchedule whose planned faults
    # (node kills/restarts, chain-member kills, chunk drops/delays) fire at
    # task-count or placement triggers.  None (the default) installs the
    # null injector — every hook is a single attribute check.
    fault_schedule: Optional[Any] = None
    # First app-level retry waits this long; each further attempt doubles
    # it (capped).  Only used when a task sets max_retries > 0.
    retry_backoff_base: float = 0.02
    # Ops plane: per-node reporters sampling scheduler/store/transfer
    # pressure into the GCS node-report table (repro.tools.reporter).
    # Default off; disabled mode is one attribute check on the node
    # lifecycle paths (the NULL_FAULTS pattern).
    reporters_enabled: bool = False
    reporter_interval_seconds: float = 0.25
    # Serve plane: how often each deployment's router publishes its
    # per-replica latency/queue-depth report into the GCS serve tables.
    serve_report_interval_seconds: float = 0.25

    @classmethod
    def describe(cls) -> List[Dict[str, Any]]:
        """One row per config field — name, type, default, one-line doc —
        renderable by both the docs and the dashboard ``/config`` endpoint."""
        rows: List[Dict[str, Any]] = []
        for f in fields(cls):
            if f.default is not MISSING:
                default: Any = f.default
            elif f.default_factory is not MISSING:  # type: ignore[misc]
                default = f.default_factory()  # type: ignore[misc]
            else:
                default = None
            rows.append(
                {
                    "name": f.name,
                    "type": f.type if isinstance(f.type, str) else str(f.type),
                    "default": repr(default),
                    "doc": _CONFIG_FIELD_DOCS.get(f.name, ""),
                }
            )
        return rows


#: One-line docs for RuntimeConfig fields (``RuntimeConfig.describe()``).
_CONFIG_FIELD_DOCS: Dict[str, str] = {
    "num_nodes": "Nodes created at init.",
    "num_cpus_per_node": "CPU resource units per node.",
    "num_gpus_per_node": "GPU resource units per node.",
    "custom_resources": "Extra per-node resource capacities (name -> amount).",
    "object_store_capacity_bytes": "Per-node object-store cap (None = unbounded).",
    "object_spill_directory": "LRU eviction spills here instead of dropping copies.",
    "gcs_shards": "Number of GCS shards (hash-partitioned tables).",
    "gcs_replicas": "Chain-replication length per GCS shard.",
    "num_global_schedulers": "Global scheduler replicas sharing the policy.",
    "locality_aware": "Weigh object locality in placement decisions.",
    "spillback_threshold": "Local backlog above which tasks spill to the global scheduler.",
    "scheduler_delay": "Injected scheduling latency (Fig 12b experiments).",
    "scheduler_policy": "Placement policy: registry name, class, or instance.",
    "spillback_policy": "Forward-to-global policy: registry name, class, or instance.",
    "gcs_flush_path": "Flush finished-task lineage to this file when over threshold.",
    "gcs_flush_threshold": "In-memory lineage entries tolerated before a flush.",
    "metrics_enabled": "Maintain the counters/gauges/histograms registry.",
    "trace_events_enabled": "Record task-lifecycle trace events in the GCS event log.",
    "value_cache_enabled": "Per-node deserialized-value LRU cache for repeated reads.",
    "value_cache_capacity_bytes": "Byte budget of the deserialized-value cache.",
    "prefetch_parallelism": "Parallel replica fetches for a task's missing inputs.",
    "gcs_batched_writes": "Coalesce finish-time GCS writes into one batch per task.",
    "submit_fastpath": "Dispatch local submissions straight to idle pooled workers.",
    "worker_pool": "Reuse persistent worker threads instead of one thread per task.",
    "gcs_client_cache": "Client-side caches for function rows and location hints.",
    "fault_schedule": "Deterministic fault-injection plan (None = null injector).",
    "retry_backoff_base": "First app-level retry delay; doubles per attempt.",
    "reporters_enabled": "Per-node reporters publishing load rows into the GCS.",
    "reporter_interval_seconds": "Reporter sampling period.",
    "serve_report_interval_seconds": "Serve router metrics publication period.",
}


class Node:
    """One cluster node: resources, an object store, a local scheduler."""

    def __init__(
        self,
        node_id: NodeID,
        resources: Dict[str, float],
        runtime: "Runtime",
        capacity_bytes: Optional[int],
    ):
        self.node_id = node_id
        self.alive = True
        self.resources = ResourcePool(resources)
        spill_directory = None
        if runtime.config.object_spill_directory:
            spill_directory = os.path.join(
                runtime.config.object_spill_directory, node_id.hex()[:12]
            )
        self.store = LocalObjectStore(
            node_id,
            capacity_bytes=capacity_bytes,
            on_evict=lambda oid: runtime.gcs.remove_object_location(oid, node_id),
            spill_directory=spill_directory,
            wait_stats=runtime.wait_stats,
            metrics=runtime.metrics,
            value_cache_capacity_bytes=runtime.config.value_cache_capacity_bytes,
            value_cache_enabled=runtime.config.value_cache_enabled,
        )
        self.local_scheduler = LocalScheduler(
            node=self,
            gcs=runtime.gcs,
            fetcher=runtime.fetcher,
            forward_to_global=runtime.route_and_place,
            execute=lambda node, spec, held, **kw: execute_task(
                runtime, node, spec, held, **kw
            ),
            spillback_threshold=runtime.config.spillback_threshold,
            spillback=runtime.make_spillback_policy(),
            wait_stats=runtime.wait_stats,
            metrics=runtime.metrics,
            # Pass None when tracing is off so the schedulers skip event
            # formatting entirely instead of gating inside trace_event.
            trace=(
                runtime.trace_event
                if runtime.config.trace_events_enabled
                else None
            ),
            faults=runtime.faults,
            fastpath=runtime.config.submit_fastpath,
            pooled_workers=runtime.config.worker_pool,
            batched_writes=runtime.config.gcs_batched_writes,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Node({self.node_id.hex()[:8]}, alive={self.alive})"


class Runtime:
    """A running cluster plus the driver's submission context."""

    def __init__(self, config: Optional[RuntimeConfig] = None, **overrides: Any):
        if config is None:
            config = RuntimeConfig(**overrides)
        elif overrides:
            raise ValueError("pass either a config object or keyword overrides")
        self.config = config
        self.stopped = False
        # The cluster-wide metrics registry: every hot layer registers its
        # series here at construction time; the dashboard exports them.
        self.metrics = MetricsRegistry(enabled=config.metrics_enabled)
        # When a lock witness is installed (REPRO_LOCKWATCH or the chaos
        # harness), export its hold/contention series through this registry.
        _watch = lockwatch.active()
        if _watch is not None:
            _watch.bind_metrics(self.metrics)
        self._trace_enabled = config.trace_events_enabled
        # One cluster-wide counter block for the notification layer; every
        # store, scheduler, and blocking wait reports into it.  The wait-
        # latency histogram gives the counters a distribution to stand on.
        self.wait_stats = WaitStats(
            wait_histogram=self.metrics.histogram(
                "wait_latency_seconds",
                "Duration of blocking waits in the notification layer",
            )
        )

        # Fault injection precedes every other subsystem: the GCS chains,
        # the transfer service, and each node's local scheduler take the
        # injector at construction (null-object when no schedule is set).
        self.faults = (
            config.fault_schedule
            if config.fault_schedule is not None
            else NULL_FAULTS
        )

        self.gcs = GlobalControlStore(
            num_shards=config.gcs_shards,
            num_replicas=config.gcs_replicas,
            metrics=self.metrics,
            faults=self.faults,
            client_cache=config.gcs_client_cache,
        )
        self.transfer = TransferService(
            self.gcs, metrics=self.metrics, faults=self.faults
        )
        self.fetcher = ObjectFetcher(
            self.gcs,
            self.transfer,
            metrics=self.metrics,
            prefetch_parallelism=config.prefetch_parallelism,
        )
        self.graph = TaskGraph()
        self.global_schedulers = [
            GlobalScheduler(
                self.gcs,
                get_nodes=self.live_nodes,
                policy=self.make_scheduler_policy(),
                locality_aware=config.locality_aware,
                decision_delay=config.scheduler_delay,
                metrics=self.metrics,
                index=index,
            )
            for index in range(max(1, config.num_global_schedulers))
        ]
        self._m_tasks_submitted = self.metrics.counter(
            "tasks_submitted_total", "Stateless task submissions"
        )
        self._m_methods_submitted = self.metrics.counter(
            "actor_methods_submitted_total", "Actor method submissions"
        )
        self._m_retries = self.metrics.counter(
            "task_retries_total", "In-place app-level task retry attempts"
        )
        self._m_cancelled = self.metrics.counter(
            "tasks_cancelled_total", "Tasks cancelled via cancel()"
        )
        # itertools.count() is C-implemented, so next() is atomic: safe for
        # concurrent submitters without a lock.
        self._scheduler_rr = itertools.count()

        # Ops plane (PR 7).  _reporters_enabled is immutable after init —
        # every node-lifecycle hook pays one attribute check when the
        # plane is off.  _ops_components collects head-side components
        # (dashboard server, autoscaler) whose threads shutdown() must
        # stop.
        self._reporters_enabled = config.reporters_enabled
        self._ops_lock = make_lock("Runtime._ops_lock")
        self._reporters: Dict[NodeID, Any] = {}
        self._ops_components: List[Any] = []

        # Node-table guard: add_node/kill_node/restart_node mutate these
        # from driver and chaos-injection threads while schedulers iterate
        # them (the same shape as the PR 3 TransferService._nodes race).
        self._nodes_lock = make_lock("Runtime._nodes_lock")
        self._nodes: Dict[NodeID, Node] = {}
        self._node_order: List[NodeID] = []
        node_resources = {"CPU": float(config.num_cpus_per_node)}
        if config.num_gpus_per_node:
            node_resources["GPU"] = float(config.num_gpus_per_node)
        node_resources.update(config.custom_resources)
        for _ in range(config.num_nodes):
            self.add_node(dict(node_resources), config.object_store_capacity_bytes)

        self.actors = ActorManager(self)
        self.reconstruction = ReconstructionManager(self)
        self.fetcher.reconstruct = self.reconstruction.maybe_reconstruct
        if config.gcs_client_cache:
            self.fetcher.lineage_known = (
                lambda object_id: self.graph.producer_of(object_id) is not None
            )

        # Cancellation registry: task_id -> forced?  A task stays marked
        # after cancellation (the stored error is the durable record); the
        # per-task wake events are dropped once the task finishes.
        self._cancel_lock = make_lock("Runtime._cancel_lock")
        self._cancelled: Dict[TaskID, bool] = {}
        self._cancel_events: Dict[TaskID, Completion] = {}

        # Replay registry: tasks resubmitted by reconstruction or node
        # death.  Their re-executions may re-submit children that already
        # have task rows, so submissions made under them take the checked
        # (existence-verified) submit path; everything else is a first
        # submission whose deterministic ID cannot be in the table yet.
        self._replay_lock = make_lock("Runtime._replay_lock")
        self._replay_hints: set = set()

        # Bind the fault schedule last: triggers may kill/restart nodes and
        # chain members, so the full cluster must exist first.
        if self.faults.enabled:
            self.faults.bind(self)

        self.flusher = None
        if config.gcs_flush_path:
            from repro.gcs.flush import GcsFlusher

            self.flusher = GcsFlusher(
                self.gcs,
                config.gcs_flush_path,
                max_entries_in_memory=config.gcs_flush_threshold,
            )

        # Driver submission context (the driver is task "root").
        self.driver_task_id = TaskID.from_random()
        self._driver_lock = make_lock("Runtime._driver_lock")
        self._driver_submission_index = 0
        self._driver_put_index = 0
        self._flush_lock = make_lock("Runtime._flush_lock")
        self._completions_since_flush_check = 0

    # ------------------------------------------------------------------
    # Cluster membership
    # ------------------------------------------------------------------

    @property
    def driver_node(self) -> Node:
        with self._nodes_lock:
            for node_id in self._node_order:
                node = self._nodes[node_id]
                if node.alive:
                    return node
        raise RuntimeNotInitializedError("no live nodes in the cluster")

    def nodes(self) -> List[Node]:
        with self._nodes_lock:
            return [self._nodes[nid] for nid in self._node_order]

    def live_nodes(self) -> List[Node]:
        return [n for n in self.nodes() if n.alive]

    def node(self, node_id: NodeID) -> Node:
        with self._nodes_lock:
            return self._nodes[node_id]

    def node_by_index(self, index: int) -> Node:
        """Node at a stable position in creation order (fault targeting)."""
        with self._nodes_lock:
            return self._nodes[self._node_order[index % len(self._node_order)]]

    def add_node(
        self,
        resources: Optional[Dict[str, float]] = None,
        capacity_bytes: Optional[int] = None,
    ) -> Node:
        if resources is None:
            resources = {"CPU": float(self.config.num_cpus_per_node)}
            if self.config.num_gpus_per_node:
                resources["GPU"] = float(self.config.num_gpus_per_node)
        node = Node(NodeID.from_random(), resources, self, capacity_bytes)
        with self._nodes_lock:
            self._nodes[node.node_id] = node
            self._node_order.append(node.node_id)
        self.transfer.register_node(node)
        self._attach_reporter(node)
        return node

    def kill_node(self, node_id: NodeID) -> None:
        """Fail a node: drop its store, reroute its queue, restart actors."""
        node = self.node(node_id)
        if not node.alive:
            return
        # Snapshot running tasks on BOTH sides of the stop.  A task that
        # finishes unstored in the alive=False window may leave _running
        # before the late snapshot (its outputs lost with no retraction
        # event); a task dispatched in the same window appears only in the
        # late one.  The union covers both.
        running = set(node.local_scheduler.running_tasks())
        node.alive = False
        node.local_scheduler.stop()
        drained = node.local_scheduler.drain()
        running.update(node.local_scheduler.running_tasks())
        lost = node.store.drop_all()
        for object_id in lost:
            self.gcs.remove_object_location(object_id, node_id)
        # In-flight fetch markers bound to this node will never be cleared
        # by its (dropped) store; purge them so the reused NodeID starts
        # clean if the node is restarted.
        self.fetcher.forget_node(node_id)
        self._detach_reporter(node_id, tombstone=True)
        self.gcs.record_event("node_death", node=node_id.hex()[:8], lost=len(lost))
        for spec in drained:
            if spec.actor_id is None:
                self.gcs.update_task_status(spec.task_id, TaskStatus.PENDING)
                self.mark_replay(spec.task_id)
                self.route_and_place(spec)
        # Tasks RUNNING on the dead node are lost with it: their worker
        # threads are stranded (they exit quietly via NodeDiedError) and
        # their outputs will never materialize, so resubmit each one now.
        # Waiting for a consumer to notice would deadlock — the output's
        # object-table entry was never created, so reconstruction has
        # nothing to replay.  Actor methods are replayed separately by the
        # actor-restart path (on_node_death), which preserves the
        # stateful-edge order.
        for task_id in running:
            entry = self.lookup_task(task_id)
            if entry is None or entry.spec.actor_id is not None:
                continue
            if entry.status in (TaskStatus.FINISHED, TaskStatus.FAILED,
                                TaskStatus.CANCELLED):
                # Finished inside the kill window: alive flipped before its
                # store_outputs ran, so the outputs were either never stored
                # (no location was ever published — no retraction event will
                # ever announce the loss) or dropped above.  Replay lineage
                # for any output with no live copy.
                for object_id in entry.spec.return_ids:
                    if not self.transfer.live_locations(object_id):
                        self.reconstruction.maybe_reconstruct(object_id)
                continue
            self.gcs.update_task_status(task_id, TaskStatus.PENDING)
            self.mark_replay(task_id)
            self.route_and_place(entry.spec)
        self.actors.on_node_death(node_id)

    def restart_node(self, node_id: NodeID) -> Node:
        """Rejoin a previously killed node under the same NodeID.

        The replacement gets a fresh (empty) store and scheduler but keeps
        the dead node's identity, resources, and position in creation
        order, modelling the same machine coming back after a reboot.
        Reusing the NodeID is safe throughout: the metrics registry is
        get-or-create, and stale GCS locations for this node were already
        retracted by ``kill_node``.
        """
        old = self.node(node_id)
        if old.alive:
            return old
        node = Node(
            node_id,
            dict(old.resources.total),
            self,
            old.store.capacity_bytes,
        )
        with self._nodes_lock:
            self._nodes[node_id] = node
        self.transfer.register_node(node)
        self._attach_reporter(node)
        self.gcs.record_event("node_restart", node=node_id.hex()[:8])
        return node

    # ------------------------------------------------------------------
    # Ops plane: per-node reporters and head-side components
    # ------------------------------------------------------------------

    def _attach_reporter(self, node: Node) -> None:
        """Start a reporter for ``node`` (no-op when reporters are off)."""
        if not self._reporters_enabled:
            return
        from repro.tools.reporter import NodeReporter

        reporter = NodeReporter(
            self, node, interval=self.config.reporter_interval_seconds
        )
        with self._ops_lock:
            self._reporters[node.node_id] = reporter
        reporter.start()
        # Publish the first row immediately so /nodes reflects a new node
        # before the first interval elapses.
        reporter.report_once()

    def _detach_reporter(self, node_id: NodeID, tombstone: bool) -> None:
        """Stop ``node_id``'s reporter, tombstoning its last-seen row on
        the node-death path (no-op when reporters are off)."""
        if not self._reporters_enabled:
            return
        with self._ops_lock:
            reporter = self._reporters.pop(node_id, None)
        if reporter is not None:
            reporter.stop(tombstone=tombstone)

    def node_reporter(self, node_id: NodeID):
        """The live reporter for ``node_id``, or None."""
        with self._ops_lock:
            return self._reporters.get(node_id)

    def register_ops(self, component: Any) -> Any:
        """Track a head-side ops component (dashboard server, autoscaler)
        so ``shutdown()`` stops its threads.  ``component.stop()`` must be
        idempotent.  Returns the component for chaining."""
        with self._ops_lock:
            self._ops_components.append(component)
        return component

    # ------------------------------------------------------------------
    # Scheduling entry points
    # ------------------------------------------------------------------

    def make_scheduler_policy(self):
        """Resolve ``config.scheduler_policy`` for one scheduler replica.

        ``None`` means "let the GlobalScheduler build its default"
        (lowest_wait honoring ``locality_aware``); a name or class yields
        a fresh instance per replica so tie-break counters and sampling
        RNGs are never shared; an instance is used as-is.
        """
        if self.config.scheduler_policy is None:
            return None
        return scheduling.make_policy(self.config.scheduler_policy)

    def make_spillback_policy(self):
        """Resolve ``config.spillback_policy`` for one local scheduler."""
        return scheduling.make_spillback(
            self.config.spillback_policy,
            threshold=self.config.spillback_threshold,
        )

    def global_scheduler_for(self, spec: TaskSpec) -> GlobalScheduler:
        index = next(self._scheduler_rr) % len(self.global_schedulers)
        return self.global_schedulers[index]

    def trace_event(self, category: str, **payload: Any) -> None:
        """Append a task-lifecycle event to the GCS event log (gated by
        ``config.trace_events_enabled``)."""
        if self._trace_enabled:
            self.gcs.record_event(category, **payload)

    def route_and_place(self, spec: TaskSpec) -> None:
        node = self.global_scheduler_for(spec).schedule(spec)
        node.local_scheduler.place(spec)

    def report_task_duration(self, seconds: float) -> None:
        if self.faults.enabled:
            # Every task / actor-method finish advances the injector's task
            # counter — the deterministic trigger clock for planned faults.
            self.faults.on_task_finished()
        for scheduler in self.global_schedulers:
            scheduler.report_task_duration(seconds)
        if self.flusher is not None:
            with self._flush_lock:
                self._completions_since_flush_check += 1
                due = self._completions_since_flush_check >= 100
                if due:
                    self._completions_since_flush_check = 0
            if due:
                self.flusher.maybe_flush()

    def lookup_task(self, task_id: TaskID):
        """Task-table lookup with fallback to flushed (on-disk) lineage.

        A flushed record found on disk is re-admitted to the in-memory
        table so the reconstruction path can update its status.
        """
        entry = self.gcs.get_task(task_id)
        if entry is not None or self.flusher is None:
            return entry
        restored = self.flusher.restore_task(task_id)
        if restored is None:
            return None
        self.gcs.add_task(task_id, restored.spec)
        self.gcs.update_task_status(task_id, restored.status)
        return self.gcs.get_task(task_id)

    def record_task_retry(
        self, spec: TaskSpec, exc: BaseException, attempt: int
    ) -> None:
        """Bookkeeping for one in-place retry attempt (counter + trace)."""
        self._m_retries.inc()
        self.trace_event(
            "task_retry",
            task=spec.task_id.hex()[:8],
            name=spec.function_name,
            attempt=attempt + 1,
            error=type(exc).__name__,
        )

    # ------------------------------------------------------------------
    # Replay hints (submit-path fast path)
    # ------------------------------------------------------------------

    def mark_replay(self, task_id: TaskID) -> None:
        """Flag ``task_id`` as a re-execution: its run must use the checked
        child-submission path (children may already have task rows)."""
        with self._replay_lock:
            self._replay_hints.add(task_id)

    def is_replay_execution(self, task_id: TaskID) -> bool:
        with self._replay_lock:
            return task_id in self._replay_hints

    def clear_replay_hint(self, task_id: TaskID) -> None:
        with self._replay_lock:
            self._replay_hints.discard(task_id)

    # ------------------------------------------------------------------
    # Cancellation
    # ------------------------------------------------------------------

    def is_cancelled(self, task_id: TaskID) -> bool:
        with self._cancel_lock:
            return task_id in self._cancelled

    def cancel_forced(self, task_id: TaskID) -> bool:
        with self._cancel_lock:
            return self._cancelled.get(task_id, False)

    def cancellation_event(self, task_id: TaskID) -> Completion:
        """Per-task completion set when the task is cancelled; created on
        demand so blocked gets inside the task wake immediately."""
        with self._cancel_lock:
            event = self._cancel_events.get(task_id)
            if event is None:
                event = Completion(stats=self.wait_stats)
                self._cancel_events[task_id] = event
            if task_id in self._cancelled:
                event.set()
            return event

    def discard_cancellation_event(self, task_id: TaskID) -> None:
        """Drop the wake event once the task has finished (the cancelled
        *flag* stays: the stored error is the durable record)."""
        with self._cancel_lock:
            self._cancel_events.pop(task_id, None)

    def cancel(self, object_id: ObjectID, force: bool = False) -> bool:
        """Cancel the task that produces ``object_id``.

        Semantics by task state:

        * **not yet dispatched** — dequeued from its local scheduler and
          never runs; ``TaskCancelledError`` is stored as its outputs.
        * **running, blocked in ``get``** — the blocked get raises
          ``TaskCancelledError`` inside the task (cooperative stop).
        * **running, pure compute** — with ``force=False`` the attempt runs
          to completion and its result stands; with ``force=True`` the
          outputs are replaced by ``TaskCancelledError`` at the finish
          boundary, so every ``get`` of them raises.
        * **already finished** — no-op; returns False.

        Actor methods are flagged, never dequeued: the mailbox must stay
        counter-contiguous, so a cancelled not-yet-run method is skipped by
        the actor loop at its turn.  Returns True if a cancellation was
        recorded.
        """
        task_id = self.graph.producer_of(object_id)
        if task_id is None:
            raise ValueError(
                f"object {object_id!r} was not produced by a task "
                "(put objects cannot be cancelled)"
            )
        entry = self.gcs.get_task(task_id)
        if entry is not None and entry.status in (
            TaskStatus.FINISHED,
            TaskStatus.FAILED,
            TaskStatus.CANCELLED,
        ):
            return False
        spec = self.graph.task(task_id)
        with self._cancel_lock:
            already = task_id in self._cancelled
            self._cancelled[task_id] = self._cancelled.get(task_id, False) or force
            event = self._cancel_events.get(task_id)
        if event is not None:
            event.set()
        if already:
            return True
        self._m_cancelled.inc()
        self.trace_event(
            "task_cancelled",
            task=task_id.hex()[:8],
            name=spec.function_name if spec is not None else "?",
            force=force,
        )
        if spec is not None and spec.actor_id is None:
            # Try to dequeue before it ever runs; racing with dispatch is
            # fine — the worker's entry check catches the loser.
            for node in self.nodes():
                removed = node.local_scheduler.cancel(task_id)
                if removed is not None:
                    self._finish_cancelled(removed)
                    break
        return True

    def _finish_cancelled(self, spec: TaskSpec) -> None:
        """Store cancelled outputs for a task that was dequeued unrun."""
        from repro.core.worker import store_outputs

        error = TaskCancelledError(spec.task_id)
        node = self.driver_node
        entries = store_outputs(
            self, node, spec, [error] * spec.num_returns, publish=False
        )
        self.gcs.finish_task(
            spec.task_id,
            TaskStatus.CANCELLED,
            None,
            entries,
            event=(
                "task_finished",
                dict(
                    task=spec.task_id.hex()[:8],
                    name=spec.function_name,
                    node="-",
                    start=time.perf_counter(),
                    duration=0.0,
                    status=TaskStatus.CANCELLED.value,
                    kind="task",
                ),
            ),
            batched=self.config.gcs_batched_writes,
        )

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def _submission_context(self) -> Tuple[TaskID, int, Node]:
        """(parent task, submission index, submitting node) for this thread."""
        task_id = context.current_task_id()
        if task_id is not None:
            node = context.current_node()
            return task_id, context.next_submission_index(), node
        with self._driver_lock:
            index = self._driver_submission_index
            self._driver_submission_index += 1
        return self.driver_task_id, index, self.driver_node

    def _submission_context_many(self, count: int) -> Tuple[TaskID, int, Node]:
        """Reserve ``count`` consecutive submission indices at once:
        (parent task, first index, submitting node)."""
        task_id = context.current_task_id()
        if task_id is not None:
            node = context.current_node()
            first = context.next_submission_index()
            for _ in range(count - 1):
                context.next_submission_index()
            return task_id, first, node
        with self._driver_lock:
            first = self._driver_submission_index
            self._driver_submission_index += count
        return self.driver_task_id, first, self.driver_node

    def ensure_function_registered(self, function_id: FunctionID, function: Callable) -> None:
        try:
            self.gcs.get_function(function_id)
        except KeyError:
            self.gcs.register_function(function_id, function)

    def submit_task(
        self,
        function_id: FunctionID,
        function_name: str,
        args: Tuple[Any, ...],
        kwargs: Tuple[Tuple[str, Any], ...],
        num_returns: int = 1,
        resources: Optional[Dict[str, float]] = None,
        max_retries: int = 0,
        retry_exceptions: Optional[Tuple[type, ...]] = None,
    ) -> Tuple[ObjectID, ...]:
        """Create and route a task; returns its future object IDs.

        Args must already be encoded (ObjectRefs replaced by ArgRef).
        """
        parent, index, node = self._submission_context()
        task_id = deterministic_task_id(parent, index)
        spec = TaskSpec(
            task_id=task_id,
            function_id=function_id,
            function_name=function_name,
            args=tuple(args),
            kwargs=tuple(kwargs),
            num_returns=num_returns,
            resources=resources if resources is not None else normalize_resources(),
            parent_task_id=parent,
            max_retries=max_retries,
            retry_exceptions=retry_exceptions,
        )
        if context.in_replay():
            # Replay of a parent re-running its submissions: the child may
            # already have a row — take the checked (existence-verified)
            # path and skip re-placement if it is finished or in flight.
            if not self._admit_replayed_task(spec):
                return spec.return_ids
        else:
            # First submission: the deterministic (parent, index) pair has
            # never been used, so the task row cannot exist — skip the
            # replay-existence read entirely.
            self.gcs.add_task(task_id, spec, check_existing=False)
        self._m_tasks_submitted.inc()
        if self._trace_enabled:
            self.gcs.record_event(
                "task_submitted",
                task=task_id.short(),
                name=function_name,
                t=time.perf_counter(),
            )
        self.graph.add_task(spec)
        node.local_scheduler.submit(spec)
        return spec.return_ids

    def _admit_replayed_task(self, spec: TaskSpec) -> bool:
        """Existence check for a possibly-replayed submission.

        Returns True if the task should be (re)placed: either it is new
        (row added) or its previous execution is dead with lost outputs.
        Returns False when its outputs still exist or it is in flight on a
        live node — the caller returns the deterministic futures as-is.
        """
        task_id = spec.task_id
        existing = self.gcs.get_task(task_id)
        if existing is None:
            self.gcs.add_task(task_id, spec)
            return True
        if existing.status == TaskStatus.FINISHED and all(
            self.transfer.live_locations(oid) for oid in spec.return_ids
        ):
            return False
        if existing.status in (
            TaskStatus.PENDING,
            TaskStatus.SCHEDULED,
            TaskStatus.RUNNING,
        ):
            running_node = (
                self.transfer.node(existing.node_id) if existing.node_id else None
            )
            if running_node is not None and running_node.alive:
                return False
        self.gcs.update_task_status(task_id, TaskStatus.PENDING)
        return True

    def submit_many(
        self,
        function_id: FunctionID,
        function_name: str,
        calls: Sequence[Tuple[Tuple[Any, ...], Tuple[Tuple[str, Any], ...]]],
        num_returns: int = 1,
        resources: Optional[Dict[str, float]] = None,
        max_retries: int = 0,
        retry_exceptions: Optional[Tuple[type, ...]] = None,
        batched: Optional[bool] = None,
    ) -> List[Tuple[ObjectID, ...]]:
        """Submit many invocations of one function in one batch.

        ``calls`` is a sequence of ``(args, kwargs)`` pairs (already
        encoded).  The task-row adds and ``task_submitted`` trace events of
        the whole batch coalesce into one ``ShardedKV.batch`` per shard —
        the submit-side mirror of the finish-side batching — and every spec
        shares one resources dict.  Returns one return-ID tuple per call.
        ``batched`` defaults to ``config.gcs_batched_writes``;
        ``batched=False`` keeps the per-op ablation path honest.
        """
        if not calls:
            return []
        if batched is None:
            batched = self.config.gcs_batched_writes
        parent, first, node = self._submission_context_many(len(calls))
        if resources is None:
            resources = normalize_resources()
        specs = [
            TaskSpec(
                task_id=deterministic_task_id(parent, first + offset),
                function_id=function_id,
                function_name=function_name,
                args=tuple(args),
                kwargs=tuple(kwargs),
                num_returns=num_returns,
                resources=resources,
                parent_task_id=parent,
                max_retries=max_retries,
                retry_exceptions=retry_exceptions,
            )
            for offset, (args, kwargs) in enumerate(calls)
        ]
        if context.in_replay():
            # Replayed batch: fall back to per-task checked admission.
            out: List[Tuple[ObjectID, ...]] = []
            for spec in specs:
                if self._admit_replayed_task(spec):
                    self._m_tasks_submitted.inc()
                    if self._trace_enabled:
                        self.gcs.record_event(
                            "task_submitted",
                            task=spec.task_id.short(),
                            name=function_name,
                            t=time.perf_counter(),
                        )
                    self.graph.add_task(spec)
                    node.local_scheduler.submit(spec)
                out.append(spec.return_ids)
            return out
        events = None
        if self._trace_enabled:
            now = time.perf_counter()
            events = [
                (
                    "task_submitted",
                    dict(task=spec.task_id.short(), name=function_name, t=now),
                )
                for spec in specs
            ]
        self.gcs.add_tasks(specs, events=events, batched=batched)
        self._m_tasks_submitted.inc(len(specs))
        for spec in specs:
            self.graph.add_task(spec)
        node.local_scheduler.submit_many(specs)
        return [spec.return_ids for spec in specs]

    def create_actor(
        self,
        cls: type,
        args: Tuple[Any, ...],
        kwargs: Tuple[Tuple[str, Any], ...],
        resources: Optional[Dict[str, float]] = None,
        checkpoint_interval: Optional[int] = None,
        max_restarts: int = 4,
        name: Optional[str] = None,
    ) -> ActorID:
        parent, index, _node = self._submission_context()
        task_id = deterministic_task_id(parent, index, salt="actor")
        actor_id = ActorID(task_id.binary())
        function_id = FunctionID.from_function(cls.__module__, cls.__qualname__)
        self.ensure_function_registered(function_id, cls)
        spec = TaskSpec(
            task_id=task_id,
            function_id=function_id,
            function_name=f"{cls.__name__}.__init__",
            args=tuple(args),
            kwargs=tuple(kwargs),
            num_returns=0,
            resources=resources or normalize_resources(),
            parent_task_id=parent,
            actor_id=actor_id,
            is_actor_creation=True,
        )
        if name is not None:
            # Claim the name before any durable side effect: a duplicate
            # raises ValueError here and no actor or task row is created.
            self.gcs.register_actor_name(name, actor_id)
        self.gcs.add_task(task_id, spec)
        self.graph.add_task(spec)
        self.actors.create_actor(
            cls,
            spec,
            checkpoint_interval=checkpoint_interval,
            max_restarts=max_restarts,
            name=name,
        )
        return actor_id

    def drain_actor(self, actor_id: ActorID, timeout: Optional[float] = None) -> bool:
        """Gracefully retire an actor: wait for its in-flight methods to
        finish, then kill it permanently (no restart).  The serve plane's
        hot model-swap uses this to drain old-version replicas."""
        return self.actors.drain_actor(actor_id, timeout=timeout)

    def submit_actor_method(
        self,
        actor_id: ActorID,
        method_name: str,
        args: Tuple[Any, ...],
        kwargs: Tuple[Tuple[str, Any], ...],
        num_returns: int = 1,
        max_retries: Optional[int] = None,
        retry_exceptions: Optional[Tuple[type, ...]] = None,
    ) -> Tuple[ObjectID, ...]:
        parent, index, _node = self._submission_context()
        state = self.actors.get_state(actor_id)
        if state is None:
            raise ObjectLostError(actor_id, f"unknown actor {actor_id!r}")
        function_id = FunctionID.from_function(
            state.cls.__module__, state.cls.__qualname__
        )

        method = getattr(state.cls, method_name, None)
        read_only = bool(getattr(method, "__repro_read_only__", False))
        # Per-call overrides win over the @repro.method declaration.
        if max_retries is None:
            max_retries = int(getattr(method, "__repro_max_retries__", 0))
        if retry_exceptions is None:
            retry_exceptions = getattr(method, "__repro_retry_exceptions__", None)

        def build(counter: int) -> TaskSpec:
            task_id = deterministic_task_id(parent, index, salt=f"m{counter}")
            return TaskSpec(
                task_id=task_id,
                function_id=function_id,
                function_name=f"{state.class_name}.{method_name}",
                args=tuple(args),
                kwargs=tuple(kwargs),
                num_returns=num_returns,
                resources={},  # methods run inside the actor's reservation
                parent_task_id=parent,
                actor_id=actor_id,
                actor_method=method_name,
                actor_counter=counter,
                is_read_only=read_only,
                max_retries=max_retries,
                retry_exceptions=retry_exceptions,
            )

        # submit_method registers the task row itself, before the spec can
        # reach the actor thread (which immediately updates its status).
        spec = self.actors.submit_method(build, actor_id)
        self._m_methods_submitted.inc()
        if self._trace_enabled:
            self.gcs.record_event(
                "task_submitted",
                task=spec.task_id.short(),
                name=spec.function_name,
                t=time.perf_counter(),
            )
        self.graph.add_task(spec)
        return spec.return_ids

    # ------------------------------------------------------------------
    # Data plane: put / get / wait
    # ------------------------------------------------------------------

    def put(self, value: Any) -> ObjectID:
        task_id = context.current_task_id()
        if task_id is not None:
            node = context.current_node()
            put_index = context.next_put_index()
        else:
            node = self.driver_node
            task_id = self.driver_task_id
            with self._driver_lock:
                put_index = self._driver_put_index
                self._driver_put_index += 1
        object_id = ObjectID.for_put(task_id, put_index)
        serialized = serialize(value)
        stored = node.store.put(object_id, serialized)
        self.gcs.add_task_outputs(
            [(object_id, serialized.total_bytes, None,
              node.node_id if stored else None)],
            batched=self.config.gcs_batched_writes,
        )
        return object_id

    def fetch_to_node(
        self,
        object_id: ObjectID,
        node: Node,
        timeout: Optional[float] = None,
        cancelled: Optional[Callable[[], bool]] = None,
        interrupt: Optional[Completion] = None,
    ) -> bool:
        """Block until ``object_id`` is in ``node``'s store.

        Purely notification-driven: wakes on the store's availability
        completion, on GCS location retractions (for the lost-object
        verdict), or on ``interrupt`` (cancellation).  Returns False if
        ``cancelled()`` fired; raises GetTimeoutError / ObjectLostError as
        appropriate.
        """
        available = node.store.availability_event(object_id)
        if available.is_set():
            return True
        deadline = None if timeout is None else time.monotonic() + timeout
        lost = Completion(stats=self.wait_stats)

        def check_lost() -> None:
            # Lineage known locally ⇒ the object is reconstructible, so
            # the lost verdict (lineage-less and no live copy) can never
            # apply — skip the GCS entry read it would otherwise cost on
            # every blocking get of a still-in-flight task return.
            if self.graph.producer_of(object_id) is not None:
                return
            entry = self.gcs.get_object_entry(object_id)
            if (
                entry is not None
                and entry.task_id is None
                and not self.transfer.live_locations(object_id)
            ):
                lost.set()

        def on_location_update(op: str, _node_id: NodeID) -> None:
            # A retraction may have removed the last live copy of an object
            # with no lineage: deliver the ObjectLostError verdict by event
            # instead of re-querying the GCS every poll round.
            if op == "remove":
                check_lost()

        unsubscribe = self.gcs.subscribe_object_locations(
            object_id, on_location_update
        )
        try:
            self.fetcher.ensure_local(object_id, node)
            check_lost()
            while True:
                # Re-fetch each round: eviction re-arms the completion, and
                # the fetch (or reconstruction) must then be re-triggered.
                available = node.store.availability_event(object_id)
                waitables = [available, lost]
                if interrupt is not None:
                    waitables.append(interrupt)
                remaining = BACKSTOP_INTERVAL
                if deadline is not None:
                    remaining = min(remaining, deadline - time.monotonic())
                if remaining > 0:
                    wait_any(waitables, timeout=remaining, stats=self.wait_stats)
                if available.is_set():
                    return True
                if cancelled is not None and cancelled():
                    return False
                if lost.is_set():
                    raise ObjectLostError(object_id)
                if not node.alive:
                    # The node this fetch was bound to died mid-wait: its
                    # store will never receive the object (transfers skip
                    # dead targets).  Stranded worker threads catch this
                    # and exit; their tasks were resubmitted by kill_node.
                    raise NodeDiedError(node.node_id)
                if deadline is not None and time.monotonic() >= deadline:
                    raise GetTimeoutError(
                        f"object {object_id!r} not available within timeout"
                    )
                # Backstop fired with nothing decided: guard against a
                # missed wakeup by re-arming the fetch and the lost check.
                self.wait_stats.record_backstop()
                self.fetcher.ensure_local(object_id, node)
                check_lost()
        finally:
            unsubscribe()

    def get(self, object_ids, timeout: Optional[float] = None):
        """Blocking retrieval of one object or a list of objects.

        Raises the stored error (``TaskExecutionError`` or
        ``TaskCancelledError``) if the producing task failed or was
        cancelled.  A get issued *inside* a task that is itself cancelled
        raises ``TaskCancelledError`` from the blocking wait — the
        cooperative cancellation point for long dependency chains.
        """
        single = not isinstance(object_ids, (list, tuple))
        id_list = [object_ids] if single else list(object_ids)
        node = context.current_node() or self.driver_node
        deadline = None if timeout is None else time.monotonic() + timeout
        current = context.current_task_id()
        cancelled = None
        interrupt = None
        if current is not None:
            # Register the wake event before blocking so a concurrent
            # cancel() of *this* task interrupts the wait immediately.
            interrupt = self.cancellation_event(current)
            cancelled = lambda: self.is_cancelled(current)  # noqa: E731
        values: List[Any] = []
        with context.blocked():
            if len(id_list) > 1:
                # Start every missing fetch before blocking on the first:
                # transfers overlap on the prefetch pool while we join the
                # availability completions in order.
                self.fetcher.prefetch(id_list, node)
            for object_id in id_list:
                while True:
                    remaining = (
                        None if deadline is None else max(0.0, deadline - time.monotonic())
                    )
                    if not self.fetch_to_node(
                        object_id,
                        node,
                        timeout=remaining,
                        cancelled=cancelled,
                        interrupt=interrupt,
                    ):
                        raise TaskCancelledError(current)
                    # Reads go through the node's deserialized-value cache.
                    value, found = node.store.load_value(object_id)
                    if found:
                        break
                    # Evicted between availability and read: retry the fetch.
                if isinstance(value, (TaskExecutionError, TaskCancelledError)):
                    raise value
                values.append(value)
        return values[0] if single else values

    def object_available(self, object_id: ObjectID) -> bool:
        """Has the object been created (any live copy in the cluster)?"""
        return bool(self.transfer.live_locations(object_id))

    def wait(
        self,
        object_ids: Sequence[ObjectID],
        num_returns: int = 1,
        timeout: Optional[float] = None,
        fetch_local: bool = False,
    ) -> Tuple[List[ObjectID], List[ObjectID]]:
        """Paper ``ray.wait``: block until ``num_returns`` objects are ready
        or the timeout expires; returns (ready, not_ready).

        With ``fetch_local=True`` the ready objects are additionally
        replicated to the caller's node before returning, so a subsequent
        ``get`` of them is a local read."""
        id_list = list(object_ids)
        if num_returns > len(id_list):
            raise ValueError("num_returns exceeds number of futures")
        deadline = None if timeout is None else time.monotonic() + timeout
        ready: List[ObjectID] = []
        pending: List[ObjectID] = list(id_list)
        # One shared completion poked by every watched object's GCS
        # location feed: any new copy anywhere in the cluster wakes us.
        progress = Completion(stats=self.wait_stats)

        def on_location_update(op: str, _node_id: NodeID) -> None:
            if op == "add":
                progress.set()

        unsubscribes = [
            self.gcs.subscribe_object_locations(object_id, on_location_update)
            for object_id in pending
        ]
        try:
            with context.blocked():
                while True:
                    # Re-arm *before* scanning so a location published
                    # between the scan and the wait is never missed.
                    progress.clear()
                    still_pending = []
                    for object_id in pending:
                        # Return *exactly* num_returns ready futures (like
                        # ray.wait): extras stay pending for the next call.
                        if len(ready) < num_returns and self.object_available(
                            object_id
                        ):
                            ready.append(object_id)
                        else:
                            still_pending.append(object_id)
                    pending = still_pending
                    if len(ready) >= num_returns or not pending:
                        break
                    remaining = BACKSTOP_INTERVAL
                    if deadline is not None:
                        now = time.monotonic()
                        if now >= deadline:
                            break
                        remaining = min(remaining, deadline - now)
                    if not progress.wait(timeout=remaining) and (
                        deadline is None or time.monotonic() < deadline
                    ):
                        self.wait_stats.record_backstop()
        finally:
            for unsubscribe in unsubscribes:
                unsubscribe()
        if fetch_local and ready:
            node = context.current_node() or self.driver_node
            self.fetcher.prefetch(ready, node)
            with context.blocked():
                for object_id in ready:
                    self.fetch_to_node(object_id, node)
        return ready, pending

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def nodes_info(self) -> List[Dict[str, Any]]:
        """Cluster membership snapshot (like ``ray.nodes()``): one dict per
        node, including dead ones, in creation order."""
        out: List[Dict[str, Any]] = []
        with self._nodes_lock:
            snapshot = [
                (nid, self._nodes[nid]) for nid in self._node_order
            ]
        for node_id, node in snapshot:
            out.append(
                {
                    "node_id": node_id.hex(),
                    "alive": node.alive,
                    "resources": dict(node.resources.total),
                    "available_resources": dict(node.resources.available()),
                    "store_bytes": node.store.used_bytes,
                    "num_objects": node.store.num_objects(),
                }
            )
        return out

    def cluster_resources(self) -> Dict[str, float]:
        """Total resources across live nodes (like ``ray.cluster_resources``)."""
        totals: Dict[str, float] = {}
        for node in self.live_nodes():
            for name, amount in node.resources.total.items():
                totals[name] = totals.get(name, 0.0) + amount
        return totals

    def available_resources(self) -> Dict[str, float]:
        """Currently unclaimed resources across live nodes."""
        available: Dict[str, float] = {}
        for node in self.live_nodes():
            for name, amount in node.resources.available().items():
                available[name] = available.get(name, 0.0) + amount
        return available

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def shutdown(self) -> None:
        """Quiesce the cluster: stop and join dispatcher threads, interrupt
        actor loops, and close the GCS flusher, so repeated init/shutdown
        cycles in one process do not accumulate daemon threads."""
        if self.stopped:
            return
        self.stopped = True
        # Ops plane first: the autoscaler must not resize a cluster that
        # is quiescing, and reporters must not publish rows mid-teardown.
        with self._ops_lock:
            components = list(self._ops_components)
            self._ops_components.clear()
            reporters = list(self._reporters.values())
            self._reporters.clear()
        for component in components:
            component.stop()
        for reporter in reporters:
            reporter.stop()
        self.actors.shutdown()
        for node in self.nodes():
            node.local_scheduler.stop()
        for node in self.nodes():
            node.local_scheduler.join(timeout=2.0)
        self.fetcher.close()
        if self.flusher is not None:
            self.flusher.close()
        self.gcs.kv.close()
