"""Per-node local scheduler (the "bottom" of the bottom-up scheduler).

Tasks created on a node are submitted to the node's local scheduler first
(paper Section 4.2.2).  The local scheduler schedules the task locally
*unless*:

* the node's dispatch backlog exceeds the spillback threshold (the node is
  overloaded), or
* the node can never satisfy the task's resource request (e.g. no GPU).

The "overloaded" decision sits behind a pluggable
:class:`~repro.core.scheduling.SpillbackPolicy` (the classic backlog
threshold by default); dead-node and never-satisfiable requests are hard
constraints checked before the policy and always forward.

A forwarded task goes to a global scheduler, which places it via its own
:class:`~repro.core.scheduling.SchedulerPolicy`.  Once a task is *placed*
on a node,
the local scheduler pulls any missing inputs via the object fetcher and
dispatches the task to a worker when all inputs are local and its resources
are available.

Two throughput mechanisms sit on top of that checked pipeline:

* a **submit fast path** — when the node is idle enough that the spillback
  policy would keep the task local anyway, and its inputs are already
  local, submission dispatches straight to a worker (one RUNNING status
  write; no global-scheduler hop, no dispatcher queue round-trip), and
* a **persistent worker pool** — workers park on a queue between tasks, so
  dispatch costs a queue hand-off instead of a per-task thread spawn.

Both are observable (``scheduler_fastpath_total``, ``policy="fastpath"``
on the trace event) and both degrade to the checked path whenever any
precondition fails.
"""

from __future__ import annotations

import queue
import threading
import time
from collections import deque
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Set

from repro.common.lockwatch import make_condition, make_thread
from repro.common.events import BACKSTOP_INTERVAL, WaitStats
from repro.common.faults import NULL_FAULTS
from repro.common.ids import ObjectID, TaskID
from repro.common.metrics import MetricsRegistry, NULL_REGISTRY
from repro.core.scheduling import RuntimeNodeView, TaskView, make_spillback
from repro.core.task_spec import TaskSpec
from repro.gcs.tables import TaskStatus

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.runtime import Node


class _PendingBacklogView(RuntimeNodeView):
    """A node view whose backlog includes batch members admitted just
    before this decision but not yet enqueued — keeps the per-spec
    spillback decisions of one ``submit_many`` batch equivalent to the
    sequential per-call decisions."""

    __slots__ = ("_extra",)

    def __init__(self, node, extra: int):
        super().__init__(node, 0)
        self._extra = extra

    def backlog(self) -> int:
        return super().backlog() + self._extra


def _policy_fastpath_trustworthy(policy) -> bool:
    """Whether ``policy.allows_fastpath`` may stand in for ``should_forward``.

    The fast path bypasses ``should_forward``, trusting ``allows_fastpath``
    to give the same answer.  That only holds when the two methods come
    from the same class: a subclass overriding ``should_forward`` while
    inheriting ``allows_fastpath`` (e.g. a recording/experimental policy)
    would get a stale opt-in, so it keeps the checked path.
    """
    for klass in type(policy).__mro__:
        has_forward = "should_forward" in klass.__dict__
        has_fast = "allows_fastpath" in klass.__dict__
        if has_forward or has_fast:
            return has_forward and has_fast
    return False


class LocalScheduler:
    """Bottom-up local scheduler for a single node."""

    def __init__(
        self,
        node: "Node",
        gcs,
        fetcher,
        forward_to_global: Callable[[TaskSpec], None],
        execute: Callable[["Node", TaskSpec, Dict[str, float]], None],
        spillback_threshold: int = 16,
        spillback: Optional[object] = None,
        wait_stats: Optional[WaitStats] = None,
        metrics: Optional[MetricsRegistry] = None,
        trace: Optional[Callable[..., None]] = None,
        faults: Optional[object] = None,
        fastpath: bool = True,
        pooled_workers: bool = True,
        batched_writes: bool = True,
    ):
        self.node = node
        self.gcs = gcs
        self.fetcher = fetcher
        self._forward_to_global = forward_to_global
        self._execute = execute
        self.spillback_threshold = spillback_threshold
        self._spillback = make_spillback(spillback, threshold=spillback_threshold)
        self._node_view = RuntimeNodeView(node, 0)
        self._wait_stats = wait_stats
        self._trace = trace
        self._faults = faults if faults is not None else NULL_FAULTS
        self._fastpath = fastpath and _policy_fastpath_trustworthy(
            self._spillback
        )
        self._pooled = pooled_workers
        self._batched_writes = batched_writes

        self._cond = make_condition("LocalScheduler._cond")
        self._ready: deque = deque()
        self._waiting: Dict[TaskID, Set[ObjectID]] = {}
        self._waiting_specs: Dict[TaskID, TaskSpec] = {}
        self._running: Set[TaskID] = set()
        self._ready_since: Dict[TaskID, float] = {}
        self._stopped = False

        # Persistent worker pool: dispatching onto a parked thread costs a
        # queue put instead of a ~100µs thread spawn.  The pool grows on
        # demand up to peak concurrency (the per-task-thread model had the
        # same peak) and threads park on the queue between tasks.
        self._work_queue: "queue.SimpleQueue" = queue.SimpleQueue()
        self._pool_threads: List[threading.Thread] = []
        self._idle_workers = 0

        self.scheduled_locally = 0
        self.forwarded = 0

        metrics = metrics or NULL_REGISTRY
        node_label = node.node_id.hex()[:8]
        self._node_hex = node_label
        self._m_placed = metrics.counter(
            "scheduler_tasks_placed_total", "Tasks placed on this node",
            node=node_label,
        )
        self._m_spillbacks = metrics.counter(
            "scheduler_spillbacks_total",
            "Tasks forwarded to a global scheduler",
            node=node_label,
        )
        self._m_fastpath = metrics.counter(
            "scheduler_fastpath_total",
            "Tasks dispatched straight to a worker by the submit fast path",
            node=node_label,
        )
        self._m_dispatch = metrics.histogram(
            "scheduler_dispatch_seconds",
            "Latency from inputs-ready to worker dispatch",
            node=node_label,
        )
        metrics.gauge(
            "scheduler_queue_depth",
            "Tasks waiting for inputs or resources",
            fn=self.queue_length,
            node=node_label,
        )

        node.resources.add_release_listener(self._notify)
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop,
            name=f"dispatcher-{node.node_id.hex()[:6]}",
            daemon=True,
        )
        self._dispatcher.start()

    # -- submission (bottom-up entry point) ----------------------------------

    def submit(self, spec: TaskSpec) -> None:
        """A co-located driver or worker created this task."""
        if self._fastpath and self._try_fastpath(spec):
            return
        if (
            not self.node.alive
            or not self.node.resources.can_ever_satisfy(spec.resources)
            or self._spillback.should_forward(
                TaskView(
                    key=spec.task_id,
                    name=spec.function_name,
                    resources=spec.resources,
                    deps_fn=spec.dependencies,
                ),
                self._node_view,
            )
        ):
            self.forwarded += 1
            self._m_spillbacks.inc()
            self._forward_to_global(spec)
            return
        self.scheduled_locally += 1
        self.place(spec)

    def _try_fastpath(self, spec: TaskSpec) -> bool:
        """Dispatch a fresh submission straight to a worker, if it is safe.

        When this node is idle enough — queues empty, every input already
        local, resources free, and the spillback policy confirms the task
        would have stayed local anyway — the whole submit→dispatch pipeline
        (global-scheduler hop, ``ClusterView`` construction, the SCHEDULED
        status write, the dispatcher queue round-trip) collapses into one
        RUNNING status write and a hand-off to a pooled worker.  Any check
        failing falls back to the ordinary checked path; the shortcut never
        changes *where* a task runs, only how many hops it takes to start.
        """
        node = self.node
        if not node.alive:
            return False
        for dep in spec.dependencies():
            if not node.store.contains(dep):
                return False
        with self._cond:
            if (
                self._stopped
                or self._ready
                or self._waiting
                # Queues are empty, so the backlog is exactly the running
                # set — let the policy apply its own rule to it.
                or not self._spillback.allows_fastpath(len(self._running))
            ):
                return False
            if not node.resources.try_acquire(spec.resources):
                return False
        # Placement-fault parity with ``place()``: a kill injected at
        # placement must be discovered by the placement that triggered it.
        if self._faults.enabled:
            self._faults.on_place(node.node_id)
            if not node.alive:
                node.resources.release(spec.resources)
                return False
        with self._cond:
            if self._stopped:
                # ``kill_node`` ran between the checks above and here; its
                # drain/running snapshots (serialized by this condition)
                # never saw the task, so hand it back for rerouting.
                bounced = True
            else:
                bounced = False
                self._running.add(spec.task_id)
        if bounced:
            node.resources.release(spec.resources)
            return False
        self.scheduled_locally += 1
        self._m_placed.inc()
        self._m_fastpath.inc()
        # One coalesced write instead of SCHEDULED-then-RUNNING plus two
        # event appends: the kill and reconstruction paths treat both
        # states identically (in flight on this node), so the intermediate
        # write carries no information, and the lifecycle events ride in
        # the same batch.
        events = None
        if self._trace is not None:
            now = time.perf_counter()
            task_hex = spec.task_id.short()
            base = dict(
                task=task_hex, name=spec.function_name, node=self._node_hex,
                t=now,
            )
            events = [
                ("task_scheduled", dict(base, policy="fastpath")),
                ("task_inputs_ready", base),
            ]
        self.gcs.set_task_states(
            [(spec, TaskStatus.RUNNING, node.node_id)],
            events=events,
            batched=self._batched_writes,
        )
        self._dispatch_to_worker(spec, already_running=True)
        return True

    def submit_many(self, specs: List[TaskSpec]) -> None:
        """Submit one ``submit_many`` batch created on this node.

        Decisions match per-spec :meth:`submit` exactly — the spillback
        policy sees the backlog grow as earlier batch members are admitted
        — but every task kept here is placed through :meth:`place_many`,
        whose whole-batch SCHEDULED write replaces one control round-trip
        per task.  The single-submission fast path is deliberately *not*
        consulted here: it pays one control write per task in the
        submitting thread, which is exactly what a batch must avoid.
        """
        place_batch: List[TaskSpec] = []
        for spec in specs:
            if (
                not self.node.alive
                or not self.node.resources.can_ever_satisfy(spec.resources)
                or self._spillback.should_forward(
                    TaskView(
                        key=spec.task_id,
                        name=spec.function_name,
                        resources=spec.resources,
                        deps_fn=spec.dependencies,
                    ),
                    _PendingBacklogView(self.node, len(place_batch)),
                )
            ):
                self.forwarded += 1
                self._m_spillbacks.inc()
                self._forward_to_global(spec)
                continue
            self.scheduled_locally += 1
            place_batch.append(spec)
        if place_batch:
            self.place_many(place_batch)

    # -- placement ------------------------------------------------------------

    def place(self, spec: TaskSpec) -> None:
        """This node has been chosen to run ``spec``."""
        if self._faults.enabled:
            # An ``at_placement`` fault fires *here*, before the alive
            # check, so a kill injected mid-placement is discovered by the
            # very placement that triggered it and spills back to global.
            self._faults.on_place(self.node.node_id)
        if not self.node.alive:
            # Placed on a node that died in the meantime: bounce to global.
            self._forward_to_global(spec)
            return
        self.gcs.update_task_status(
            spec.task_id, TaskStatus.SCHEDULED, node_id=self.node.node_id
        )
        self._m_placed.inc()
        self._emit("task_scheduled", spec)
        missing = {
            dep
            for dep in spec.dependencies()
            if not self.node.store.contains(dep)
        }
        if not missing:
            self._emit("task_inputs_ready", spec)
            self._enqueue_ready(spec)
            return
        with self._cond:
            if self._stopped:
                # The node died between the alive check above and here: a
                # spec registered now would be invisible to the kill path's
                # drain (it already ran) and lost forever.  stop()/drain()
                # hold this condition, so the check is authoritative.
                bounced = True
            else:
                bounced = False
                self._waiting[spec.task_id] = set(missing)
                self._waiting_specs[spec.task_id] = spec
        if bounced:
            self._forward_to_global(spec)
            return
        # Register every readiness callback first (fires immediately for
        # anything already arrived), then fan the fetches out to the
        # prefetch pool so the missing inputs replicate in parallel.
        for dep in missing:
            self.node.store.on_available(
                dep, lambda oid, tid=spec.task_id: self._input_ready(tid, oid)
            )
        self.fetcher.prefetch(list(missing), self.node)

    def place_many(self, specs: List[TaskSpec]) -> None:
        """Place a batch chosen for this node.

        Semantically ``place()`` per spec, but the whole batch's SCHEDULED
        rows and ``task_scheduled``/``task_inputs_ready`` events coalesce
        into one shard write, and the ready sub-batch is enqueued under one
        condition acquisition with a single wake-up.
        """
        node = self.node
        if self._faults.enabled:
            # One placement trigger per task, as on the per-spec path.
            for _ in specs:
                self._faults.on_place(node.node_id)
        if not node.alive:
            for spec in specs:
                self._forward_to_global(spec)
            return
        ready: List[TaskSpec] = []
        missing_by_spec: List[tuple] = []
        for spec in specs:
            missing = {
                dep
                for dep in spec.dependencies()
                if not node.store.contains(dep)
            }
            if missing:
                missing_by_spec.append((spec, missing))
            else:
                ready.append(spec)
        events = None
        if self._trace is not None:
            now = time.perf_counter()
            events = [
                (
                    "task_scheduled",
                    dict(
                        task=spec.task_id.short(),
                        name=spec.function_name,
                        node=self._node_hex,
                        t=now,
                    ),
                )
                for spec in specs
            ]
            events.extend(
                (
                    "task_inputs_ready",
                    dict(
                        task=spec.task_id.short(),
                        name=spec.function_name,
                        node=self._node_hex,
                        t=now,
                    ),
                )
                for spec in ready
            )
        self.gcs.set_task_states(
            [(spec, TaskStatus.SCHEDULED, node.node_id) for spec in specs],
            events=events,
            batched=self._batched_writes,
        )
        self._m_placed.inc(len(specs))
        with self._cond:
            if self._stopped:
                bounced = True
            else:
                bounced = False
                for spec, missing in missing_by_spec:
                    self._waiting[spec.task_id] = set(missing)
                    self._waiting_specs[spec.task_id] = spec
                if ready:
                    now_mono = time.monotonic()
                    for spec in ready:
                        self._ready.append(spec)
                        self._ready_since[spec.task_id] = now_mono
                    self._cond.notify_all()
        if bounced:
            # Stopped between the alive check and registration (see
            # ``place``): none of the batch was registered — reroute all.
            for spec in specs:
                self._forward_to_global(spec)
            return
        all_missing: List[ObjectID] = []
        for spec, missing in missing_by_spec:
            for dep in missing:
                self.node.store.on_available(
                    dep,
                    lambda oid, tid=spec.task_id: self._input_ready(tid, oid),
                )
            all_missing.extend(missing)
        if all_missing:
            self.fetcher.prefetch(all_missing, node)

    def _emit(self, category: str, spec: TaskSpec, **extra) -> None:
        """Record a task-lifecycle trace event (never under ``_cond``)."""
        if self._trace is not None:
            self._trace(
                category,
                task=spec.task_id.short(),
                name=spec.function_name,
                node=self._node_hex,
                t=time.perf_counter(),
                **extra,
            )

    def _input_ready(self, task_id: TaskID, object_id: ObjectID) -> None:
        with self._cond:
            pending = self._waiting.get(task_id)
            if pending is None:
                return
            pending.discard(object_id)
            if pending:
                return
            del self._waiting[task_id]
            spec = self._waiting_specs.pop(task_id)
        # Emit before enqueueing (and outside the lock): once dispatched the
        # span boundaries must already be in the log.
        self._emit("task_inputs_ready", spec)
        self._enqueue_ready(spec)

    def _enqueue_ready(self, spec: TaskSpec) -> None:
        with self._cond:
            if not self._stopped:
                self._ready.append(spec)
                self._ready_since[spec.task_id] = time.monotonic()
                self._cond.notify_all()
                return
        # Stopped under us (the window between _input_ready popping the
        # spec from _waiting and this append is invisible to drain()):
        # hand the task back for placement on a live node.
        self._forward_to_global(spec)

    # -- dispatch ----------------------------------------------------------------

    def _notify(self) -> None:
        with self._cond:
            self._cond.notify_all()

    def _dispatch_loop(self) -> None:
        while True:
            with self._cond:
                batch = self._pick_dispatch_batch()
                while not batch and not self._stopped:
                    # Notification-driven: ready-queue pushes and resource
                    # releases notify this condition.  The timed wait is
                    # only a guarded missed-wakeup backstop.
                    notified = self._cond.wait(timeout=BACKSTOP_INTERVAL)
                    batch = self._pick_dispatch_batch()
                    if (
                        not notified
                        and batch
                        and self._wait_stats is not None
                    ):
                        # A task was dispatchable but no notification
                        # arrived: the backstop caught a missed wakeup.
                        self._wait_stats.record_backstop(recovered=True)
                stopped = self._stopped
                if not stopped:
                    for spec in batch:
                        self._running.add(spec.task_id)
            if stopped:
                # Specs picked in the same round the node stopped were
                # already out of _ready (invisible to drain), with their
                # resources held: release and reroute them rather than drop
                # them.  Forwarding happens outside _cond — it takes another
                # node's condition, and nesting the two would invert lock
                # order against that node's own dispatcher.
                for spec in batch:
                    self.node.resources.release(spec.resources)
                    self._forward_to_global(spec)
                return
            if self._pooled:
                # One coalesced RUNNING write for the whole round (built
                # from the specs in hand — no read-modify-write), then
                # queue hand-offs; the per-task write is skipped by the
                # workers (``status_already_running``).
                self.gcs.set_task_states(
                    [
                        (spec, TaskStatus.RUNNING, self.node.node_id)
                        for spec in batch
                    ],
                    batched=self._batched_writes,
                )
                for spec in batch:
                    self._dispatch_to_worker(spec, already_running=True)
            else:
                for spec in batch:
                    self._dispatch_to_worker(spec)

    def _pick_dispatchable(self) -> Optional[TaskSpec]:
        """First ready task whose resources fit right now (lock held)."""
        for index, spec in enumerate(self._ready):
            if self.node.resources.try_acquire(spec.resources):
                del self._ready[index]
                ready_at = self._ready_since.pop(spec.task_id, None)
                if ready_at is not None:
                    self._m_dispatch.observe(time.monotonic() - ready_at)
                return spec
        return None

    def _pick_dispatch_batch(self) -> List[TaskSpec]:
        """Every ready task whose resources fit right now (lock held)."""
        batch: List[TaskSpec] = []
        while True:
            spec = self._pick_dispatchable()
            if spec is None:
                return batch
            batch.append(spec)

    def _dispatch_to_worker(
        self, spec: TaskSpec, already_running: bool = False
    ) -> None:
        """Hand a dispatched task (resources held, in ``_running``) to a
        worker thread — a parked pool thread when pooling is on, a fresh
        thread otherwise."""
        if not self._pooled:
            worker = threading.Thread(
                target=self._run_task,
                args=(spec, already_running),
                name=f"worker-{spec.function_name[:24]}",
                daemon=True,
            )
            worker.start()
            return
        spawn = None
        with self._cond:
            if self._idle_workers > 0:
                self._idle_workers -= 1
            else:
                spawn = make_thread(
                    self._worker_loop,
                    name=f"worker-{self._node_hex[:6]}-{len(self._pool_threads)}",
                )
                self._pool_threads.append(spawn)
        if spawn is not None:
            spawn.start()
        self._work_queue.put((spec, already_running))

    def _worker_loop(self) -> None:
        while True:
            item = self._work_queue.get()
            if item is None:  # stop() sentinel
                return
            spec, already_running = item
            self._run_task(spec, already_running)
            with self._cond:
                if self._stopped:
                    return
                self._idle_workers += 1

    def _run_task(self, spec: TaskSpec, already_running: bool = False) -> None:
        try:
            if already_running:
                self._execute(
                    self.node,
                    spec,
                    dict(spec.resources),
                    status_already_running=True,
                )
            else:
                self._execute(self.node, spec, dict(spec.resources))
        finally:
            self.node.resources.release(spec.resources)
            with self._cond:
                self._running.discard(spec.task_id)
                self._cond.notify_all()

    # -- cancellation ---------------------------------------------------------

    def cancel(self, task_id: TaskID) -> Optional[TaskSpec]:
        """Dequeue ``task_id`` if it has not started running.

        Returns the removed spec (the caller stores cancelled outputs for
        it), or ``None`` if the task is already running here, finished, or
        unknown — in those cases cancellation is cooperative only.
        """
        with self._cond:
            for index, spec in enumerate(self._ready):
                if spec.task_id == task_id:
                    del self._ready[index]
                    self._ready_since.pop(task_id, None)
                    return spec
            if task_id in self._waiting:
                del self._waiting[task_id]
                return self._waiting_specs.pop(task_id)
            return None

    def running_tasks(self) -> List[TaskID]:
        """IDs of tasks currently executing on this node's workers."""
        with self._cond:
            return list(self._running)

    # -- load info (heartbeats to the global scheduler) --------------------------

    def backlog(self) -> int:
        """Dispatch backlog: tasks placed here but not yet finished."""
        with self._cond:
            return len(self._ready) + len(self._waiting) + len(self._running)

    def queue_length(self) -> int:
        with self._cond:
            return len(self._ready) + len(self._waiting)

    # -- lifecycle ------------------------------------------------------------------

    def drain(self) -> List[TaskSpec]:
        """Remove and return all not-yet-running tasks (node failure path)."""
        with self._cond:
            drained = list(self._ready)
            drained.extend(self._waiting_specs.values())
            self._ready.clear()
            self._waiting.clear()
            self._waiting_specs.clear()
            self._ready_since.clear()
            return drained

    def stop(self) -> None:
        with self._cond:
            self._stopped = True
            self._cond.notify_all()
            pool_size = len(self._pool_threads)
        # One sentinel per pool thread: parked workers wake and exit; busy
        # workers notice ``_stopped`` after their task and leave their
        # sentinel behind in a dead queue.
        for _ in range(pool_size):
            self._work_queue.put(None)

    def join(self, timeout: Optional[float] = None) -> None:
        """Wait for the dispatcher thread to exit (call ``stop`` first)."""
        if self._dispatcher is not threading.current_thread():
            self._dispatcher.join(timeout)
        me = threading.current_thread()
        with self._cond:
            pool = list(self._pool_threads)
        # One shared deadline across the pool: a worker stranded in a
        # blocked task must not multiply the wait (they are daemons and
        # exit with the process regardless).
        deadline = None if timeout is None else time.monotonic() + timeout
        for worker in pool:
            if worker is me:
                continue
            remaining = (
                None
                if deadline is None
                else max(0.0, deadline - time.monotonic())
            )
            worker.join(remaining)
