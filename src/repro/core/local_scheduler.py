"""Per-node local scheduler (the "bottom" of the bottom-up scheduler).

Tasks created on a node are submitted to the node's local scheduler first
(paper Section 4.2.2).  The local scheduler schedules the task locally
*unless*:

* the node's dispatch backlog exceeds the spillback threshold (the node is
  overloaded), or
* the node can never satisfy the task's resource request (e.g. no GPU).

The "overloaded" decision sits behind a pluggable
:class:`~repro.core.scheduling.SpillbackPolicy` (the classic backlog
threshold by default); dead-node and never-satisfiable requests are hard
constraints checked before the policy and always forward.

A forwarded task goes to a global scheduler, which places it via its own
:class:`~repro.core.scheduling.SchedulerPolicy`.  Once a task is *placed*
on a node,
the local scheduler pulls any missing inputs via the object fetcher and
dispatches the task to a worker when all inputs are local and its resources
are available.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Set

from repro.common.lockwatch import make_condition
from repro.common.events import BACKSTOP_INTERVAL, WaitStats
from repro.common.faults import NULL_FAULTS
from repro.common.ids import ObjectID, TaskID
from repro.common.metrics import MetricsRegistry, NULL_REGISTRY
from repro.core.scheduling import RuntimeNodeView, TaskView, make_spillback
from repro.core.task_spec import TaskSpec
from repro.gcs.tables import TaskStatus

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.runtime import Node


class LocalScheduler:
    """Bottom-up local scheduler for a single node."""

    def __init__(
        self,
        node: "Node",
        gcs,
        fetcher,
        forward_to_global: Callable[[TaskSpec], None],
        execute: Callable[["Node", TaskSpec, Dict[str, float]], None],
        spillback_threshold: int = 16,
        spillback: Optional[object] = None,
        wait_stats: Optional[WaitStats] = None,
        metrics: Optional[MetricsRegistry] = None,
        trace: Optional[Callable[..., None]] = None,
        faults: Optional[object] = None,
    ):
        self.node = node
        self.gcs = gcs
        self.fetcher = fetcher
        self._forward_to_global = forward_to_global
        self._execute = execute
        self.spillback_threshold = spillback_threshold
        self._spillback = make_spillback(spillback, threshold=spillback_threshold)
        self._node_view = RuntimeNodeView(node, 0)
        self._wait_stats = wait_stats
        self._trace = trace
        self._faults = faults if faults is not None else NULL_FAULTS

        self._cond = make_condition("LocalScheduler._cond")
        self._ready: deque = deque()
        self._waiting: Dict[TaskID, Set[ObjectID]] = {}
        self._waiting_specs: Dict[TaskID, TaskSpec] = {}
        self._running: Set[TaskID] = set()
        self._ready_since: Dict[TaskID, float] = {}
        self._stopped = False

        self.scheduled_locally = 0
        self.forwarded = 0

        metrics = metrics or NULL_REGISTRY
        node_label = node.node_id.hex()[:8]
        self._m_placed = metrics.counter(
            "scheduler_tasks_placed_total", "Tasks placed on this node",
            node=node_label,
        )
        self._m_spillbacks = metrics.counter(
            "scheduler_spillbacks_total",
            "Tasks forwarded to a global scheduler",
            node=node_label,
        )
        self._m_dispatch = metrics.histogram(
            "scheduler_dispatch_seconds",
            "Latency from inputs-ready to worker dispatch",
            node=node_label,
        )
        metrics.gauge(
            "scheduler_queue_depth",
            "Tasks waiting for inputs or resources",
            fn=self.queue_length,
            node=node_label,
        )

        node.resources.add_release_listener(self._notify)
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop,
            name=f"dispatcher-{node.node_id.hex()[:6]}",
            daemon=True,
        )
        self._dispatcher.start()

    # -- submission (bottom-up entry point) ----------------------------------

    def submit(self, spec: TaskSpec) -> None:
        """A co-located driver or worker created this task."""
        if (
            not self.node.alive
            or not self.node.resources.can_ever_satisfy(spec.resources)
            or self._spillback.should_forward(
                TaskView(
                    key=spec.task_id,
                    name=spec.function_name,
                    resources=spec.resources,
                    deps_fn=spec.dependencies,
                ),
                self._node_view,
            )
        ):
            self.forwarded += 1
            self._m_spillbacks.inc()
            self._forward_to_global(spec)
            return
        self.scheduled_locally += 1
        self.place(spec)

    # -- placement ------------------------------------------------------------

    def place(self, spec: TaskSpec) -> None:
        """This node has been chosen to run ``spec``."""
        if self._faults.enabled:
            # An ``at_placement`` fault fires *here*, before the alive
            # check, so a kill injected mid-placement is discovered by the
            # very placement that triggered it and spills back to global.
            self._faults.on_place(self.node.node_id)
        if not self.node.alive:
            # Placed on a node that died in the meantime: bounce to global.
            self._forward_to_global(spec)
            return
        self.gcs.update_task_status(
            spec.task_id, TaskStatus.SCHEDULED, node_id=self.node.node_id
        )
        self._m_placed.inc()
        self._emit("task_scheduled", spec)
        missing = {
            dep
            for dep in spec.dependencies()
            if not self.node.store.contains(dep)
        }
        if not missing:
            self._emit("task_inputs_ready", spec)
            self._enqueue_ready(spec)
            return
        with self._cond:
            if self._stopped:
                # The node died between the alive check above and here: a
                # spec registered now would be invisible to the kill path's
                # drain (it already ran) and lost forever.  stop()/drain()
                # hold this condition, so the check is authoritative.
                bounced = True
            else:
                bounced = False
                self._waiting[spec.task_id] = set(missing)
                self._waiting_specs[spec.task_id] = spec
        if bounced:
            self._forward_to_global(spec)
            return
        # Register every readiness callback first (fires immediately for
        # anything already arrived), then fan the fetches out to the
        # prefetch pool so the missing inputs replicate in parallel.
        for dep in missing:
            self.node.store.on_available(
                dep, lambda oid, tid=spec.task_id: self._input_ready(tid, oid)
            )
        self.fetcher.prefetch(list(missing), self.node)

    def _emit(self, category: str, spec: TaskSpec) -> None:
        """Record a task-lifecycle trace event (never under ``_cond``)."""
        if self._trace is not None:
            self._trace(
                category,
                task=spec.task_id.hex()[:8],
                name=spec.function_name,
                node=self.node.node_id.hex()[:8],
                t=time.perf_counter(),
            )

    def _input_ready(self, task_id: TaskID, object_id: ObjectID) -> None:
        with self._cond:
            pending = self._waiting.get(task_id)
            if pending is None:
                return
            pending.discard(object_id)
            if pending:
                return
            del self._waiting[task_id]
            spec = self._waiting_specs.pop(task_id)
        # Emit before enqueueing (and outside the lock): once dispatched the
        # span boundaries must already be in the log.
        self._emit("task_inputs_ready", spec)
        self._enqueue_ready(spec)

    def _enqueue_ready(self, spec: TaskSpec) -> None:
        with self._cond:
            if not self._stopped:
                self._ready.append(spec)
                self._ready_since[spec.task_id] = time.monotonic()
                self._cond.notify_all()
                return
        # Stopped under us (the window between _input_ready popping the
        # spec from _waiting and this append is invisible to drain()):
        # hand the task back for placement on a live node.
        self._forward_to_global(spec)

    # -- dispatch ----------------------------------------------------------------

    def _notify(self) -> None:
        with self._cond:
            self._cond.notify_all()

    def _dispatch_loop(self) -> None:
        while True:
            with self._cond:
                spec = self._pick_dispatchable()
                while spec is None and not self._stopped:
                    # Notification-driven: ready-queue pushes and resource
                    # releases notify this condition.  The timed wait is
                    # only a guarded missed-wakeup backstop.
                    notified = self._cond.wait(timeout=BACKSTOP_INTERVAL)
                    spec = self._pick_dispatchable()
                    if (
                        not notified
                        and spec is not None
                        and self._wait_stats is not None
                    ):
                        # A task was dispatchable but no notification
                        # arrived: the backstop caught a missed wakeup.
                        self._wait_stats.record_backstop(recovered=True)
                stopped = self._stopped
                if not stopped:
                    self._running.add(spec.task_id)
            if stopped:
                # A spec picked in the same round the node stopped was
                # already out of _ready (invisible to drain), with its
                # resources held: release and reroute it rather than drop
                # it.  Forwarding happens outside _cond — it takes another
                # node's condition, and nesting the two would invert lock
                # order against that node's own dispatcher.
                if spec is not None:
                    self.node.resources.release(spec.resources)
                    self._forward_to_global(spec)
                return
            worker = threading.Thread(
                target=self._run_task,
                args=(spec,),
                name=f"worker-{spec.function_name[:24]}",
                daemon=True,
            )
            worker.start()

    def _pick_dispatchable(self) -> Optional[TaskSpec]:
        """First ready task whose resources fit right now (lock held)."""
        for index, spec in enumerate(self._ready):
            if self.node.resources.try_acquire(spec.resources):
                del self._ready[index]
                ready_at = self._ready_since.pop(spec.task_id, None)
                if ready_at is not None:
                    self._m_dispatch.observe(time.monotonic() - ready_at)
                return spec
        return None

    def _run_task(self, spec: TaskSpec) -> None:
        try:
            self._execute(self.node, spec, dict(spec.resources))
        finally:
            self.node.resources.release(spec.resources)
            with self._cond:
                self._running.discard(spec.task_id)
                self._cond.notify_all()

    # -- cancellation ---------------------------------------------------------

    def cancel(self, task_id: TaskID) -> Optional[TaskSpec]:
        """Dequeue ``task_id`` if it has not started running.

        Returns the removed spec (the caller stores cancelled outputs for
        it), or ``None`` if the task is already running here, finished, or
        unknown — in those cases cancellation is cooperative only.
        """
        with self._cond:
            for index, spec in enumerate(self._ready):
                if spec.task_id == task_id:
                    del self._ready[index]
                    self._ready_since.pop(task_id, None)
                    return spec
            if task_id in self._waiting:
                del self._waiting[task_id]
                return self._waiting_specs.pop(task_id)
            return None

    def running_tasks(self) -> List[TaskID]:
        """IDs of tasks currently executing on this node's workers."""
        with self._cond:
            return list(self._running)

    # -- load info (heartbeats to the global scheduler) --------------------------

    def backlog(self) -> int:
        """Dispatch backlog: tasks placed here but not yet finished."""
        with self._cond:
            return len(self._ready) + len(self._waiting) + len(self._running)

    def queue_length(self) -> int:
        with self._cond:
            return len(self._ready) + len(self._waiting)

    # -- lifecycle ------------------------------------------------------------------

    def drain(self) -> List[TaskSpec]:
        """Remove and return all not-yet-running tasks (node failure path)."""
        with self._cond:
            drained = list(self._ready)
            drained.extend(self._waiting_specs.values())
            self._ready.clear()
            self._waiting.clear()
            self._waiting_specs.clear()
            self._ready_since.clear()
            return drained

    def stop(self) -> None:
        with self._cond:
            self._stopped = True
            self._cond.notify_all()

    def join(self, timeout: Optional[float] = None) -> None:
        """Wait for the dispatcher thread to exit (call ``stop`` first)."""
        if self._dispatcher is not threading.current_thread():
            self._dispatcher.join(timeout)
