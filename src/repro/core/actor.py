"""Actors: stateful computation with lineage-based reconstruction.

An actor is a stateful process pinned to a node; its methods execute
serially, each depending on the state left by the previous one (the
*stateful edge* chain of Section 3.2).  The runtime records every method
invocation in the GCS, so an actor lost to a node failure can be rebuilt:
a new instance is created on a live node, its state is restored from the
most recent checkpoint, and the methods after the checkpoint are replayed
in order (paper Figure 11b).  Because method outputs are written under
deterministic object IDs, replay is idempotent.

Checkpointing is user-definable: classes may provide ``save_checkpoint()``
returning an opaque state blob and ``restore_checkpoint(blob)``; otherwise
the instance ``__dict__`` is snapshotted.
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING, Any, Dict, Optional

from repro.common.lockwatch import make_condition, make_lock
from repro.common.errors import (
    ActorDiedError,
    NodeDiedError,
    TaskCancelledError,
    TaskExecutionError,
)
from repro.common.events import BACKSTOP_INTERVAL, Completion
from repro.common.ids import ActorID, NodeID
from repro.common.serialization import deserialize, serialize
from repro.core import context
from repro.core.task_spec import TaskSpec
from repro.core.worker import (
    normalize_returns,
    pin_inputs,
    resolve_args,
    retry_delay,
    should_retry,
    store_outputs,
)
from repro.gcs.tables import TaskStatus

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.runtime import Node, Runtime

_ACTOR_LOG = "actor_log"
_ACTOR_CKPT = "actor_ckpt"
_ACTOR_CREATION = "actor_creation"


class ActorState:
    """Mutable bookkeeping for one actor (all incarnations)."""

    def __init__(
        self,
        actor_id: ActorID,
        cls: type,
        class_name: str,
        creation_spec: TaskSpec,
        checkpoint_interval: Optional[int],
        max_restarts: int,
        name: Optional[str] = None,
    ):
        self.actor_id = actor_id
        self.cls = cls
        self.class_name = class_name
        self.creation_spec = creation_spec
        self.checkpoint_interval = checkpoint_interval
        self.max_restarts = max_restarts
        self.name = name  # user-visible name (``get_actor`` registry)

        self.cond = make_condition("ActorState.cond")
        self.node: Optional["Node"] = None
        self.instance: Any = None
        self.mailbox: Dict[int, TaskSpec] = {}
        self.next_counter = 0  # next method counter to execute
        self.submitted = 0  # next counter to assign at submission
        self.incarnation = 0
        self.restarts = 0
        self.dead_forever = False
        self.replay_boundary = 0  # counters below this are replays
        self.ready = threading.Event()  # instance constructed at least once
        # Signalled when the current incarnation must stop (restart, kill,
        # shutdown); re-armed (replaced) for each new incarnation so blocked
        # input fetches wake immediately instead of timing out.
        self.interrupt = Completion()
        self.thread: Optional[threading.Thread] = None


class ActorManager:
    """Creates, drives, kills, and reconstructs actors."""

    def __init__(self, runtime: "Runtime"):
        self.runtime = runtime
        self._lock = make_lock("ActorManager._lock")
        self.actors: Dict[ActorID, ActorState] = {}
        self.replayed_methods = 0
        self.checkpoints_taken = 0

    # ------------------------------------------------------------------
    # Creation
    # ------------------------------------------------------------------

    def create_actor(
        self,
        cls: type,
        creation_spec: TaskSpec,
        checkpoint_interval: Optional[int] = None,
        max_restarts: int = 4,
        name: Optional[str] = None,
    ) -> ActorState:
        actor_id = creation_spec.actor_id
        assert actor_id is not None
        gcs = self.runtime.gcs
        # The name (if any) was already claimed by the caller — the claim
        # must precede the durable task row so duplicates have no effect.
        state = ActorState(
            actor_id,
            cls,
            cls.__name__,
            creation_spec,
            checkpoint_interval,
            max_restarts,
            name=name,
        )
        with self._lock:
            self.actors[actor_id] = state
        gcs.register_actor(actor_id, cls.__name__, None)
        gcs.kv.put((_ACTOR_CREATION, actor_id), creation_spec)
        self._start_incarnation(state)
        return state

    def _choose_node(self, state: ActorState) -> "Node":
        return self.runtime.global_scheduler_for(state.creation_spec).schedule(
            state.creation_spec
        )

    def _start_incarnation(self, state: ActorState) -> None:
        node = self._choose_node(state)
        with state.cond:
            state.interrupt.set()  # wake any wait of the previous incarnation
            state.interrupt = Completion(stats=self.runtime.wait_stats)
            interrupt = state.interrupt
            state.node = node
            state.incarnation += 1
            incarnation = state.incarnation
            state.cond.notify_all()
        thread = threading.Thread(
            target=self._actor_loop,
            args=(state, incarnation, interrupt),
            name=f"actor-{state.class_name}-{state.actor_id.hex()[:6]}",
            daemon=True,
        )
        state.thread = thread
        thread.start()

    # ------------------------------------------------------------------
    # Method submission
    # ------------------------------------------------------------------

    def submit_method(self, state_spec_builder, actor_id: ActorID):
        """Assign the next method counter and deliver the spec.

        ``state_spec_builder(counter)`` builds the TaskSpec once the counter
        is known (counters define the stateful-edge order).
        """
        with self._lock:
            state = self.actors.get(actor_id)
        if state is None:
            raise ActorDiedError(f"unknown actor {actor_id!r}")
        with state.cond:
            counter = state.submitted
            state.submitted += 1
        spec = state_spec_builder(counter)
        gcs = self.runtime.gcs
        # The task-table row must exist before the spec can reach the actor
        # thread: the method may start the instant it lands in the mailbox,
        # and its first act is an update_task_status against that row.  (With
        # any real GCS write latency the actor reliably wins that race.)
        gcs.add_task(spec.task_id, spec)
        gcs.kv.append((_ACTOR_LOG, actor_id), spec)
        if state.dead_forever:
            self._store_method_error(state, spec)
            return spec
        with state.cond:
            state.mailbox.setdefault(counter, spec)
            state.cond.notify_all()
        return spec

    def _store_method_error(self, state: ActorState, spec: TaskSpec) -> None:
        node = self.runtime.driver_node
        error = TaskExecutionError(
            spec.task_id,
            ActorDiedError(f"actor {state.class_name} died permanently"),
        )
        store_outputs(self.runtime, node, spec, [error] * spec.num_returns)
        self.runtime.gcs.update_task_status(spec.task_id, TaskStatus.FAILED)

    # ------------------------------------------------------------------
    # The actor loop (one thread per incarnation)
    # ------------------------------------------------------------------

    def _stale(self, state: ActorState, incarnation: int) -> bool:
        with state.cond:
            return (
                state.incarnation != incarnation
                or state.dead_forever
                or self.runtime.stopped
            )

    def _actor_loop(
        self, state: ActorState, incarnation: int, interrupt: Completion
    ) -> None:
        runtime = self.runtime
        node = state.node
        gcs = runtime.gcs
        # Acquire the actor's lifetime resources; keep trying (in short
        # slices so a kill/restart can cancel us) until they free up.  If
        # this node stays full, ask the global scheduler for a new
        # placement — capacity may have opened up elsewhere.
        attempts = 0
        while not node.resources.acquire(state.creation_spec.resources, timeout=0.2):
            if self._stale(state, incarnation) or not node.alive:
                return
            attempts += 1
            if attempts % 10 == 0:
                replacement = self._choose_node(state)
                if replacement is not node:
                    with state.cond:
                        state.node = replacement
                    node = replacement
        try:
            instance = self._construct_instance(state, incarnation, node, interrupt)
            if instance is None:
                return
            restored_counter = self._restore_checkpoint(state, instance)
            # Read the durable method log *before* taking state.cond: a
            # chain-replicated kv.log is a blocking RPC, and anything
            # submitted after this read reaches the mailbox via
            # submit_method's live delivery (setdefault dedupes).
            method_log = self.runtime.gcs.kv.log((_ACTOR_LOG, state.actor_id))
            with state.cond:
                previously_executed = state.next_counter
                state.instance = instance
                state.next_counter = restored_counter
                state.replay_boundary = max(previously_executed, restored_counter)
                self._rebuild_mailbox(state, restored_counter, method_log)
            gcs.update_actor(
                state.actor_id,
                node_id=node.node_id,
                alive=True,
                methods_executed=restored_counter,
                checkpoint_index=restored_counter,
            )
            state.ready.set()
            while True:
                with state.cond:
                    while (
                        state.next_counter not in state.mailbox
                        and not self._stale_locked(state, incarnation)
                    ):
                        # Notification-driven: submissions and lifecycle
                        # changes notify this condition; the timed wait is
                        # only a guarded missed-wakeup backstop.
                        notified = state.cond.wait(timeout=BACKSTOP_INTERVAL)
                        if not notified and (
                            state.next_counter in state.mailbox
                            or self._stale_locked(state, incarnation)
                        ):
                            self.runtime.wait_stats.record_backstop(
                                recovered=True
                            )
                    if self._stale_locked(state, incarnation):
                        return
                    spec = state.mailbox.pop(state.next_counter)
                self._execute_method(
                    state, incarnation, node, instance, spec, interrupt
                )
                if self._stale(state, incarnation):
                    return
        except NodeDiedError:
            # The node died under this incarnation mid-fetch or mid-method.
            # Exit quietly without advancing the counter: on_node_death
            # restarts the actor elsewhere and replays from the checkpoint.
            return
        finally:
            node.resources.release(state.creation_spec.resources)

    def _stale_locked(self, state: ActorState, incarnation: int) -> bool:
        return (
            state.incarnation != incarnation
            or state.dead_forever
            or self.runtime.stopped
        )

    def _construct_instance(
        self,
        state: ActorState,
        incarnation: int,
        node: "Node",
        interrupt: Completion,
    ) -> Any:
        runtime = self.runtime
        spec = state.creation_spec
        runtime.fetcher.prefetch(spec.dependencies(), node)
        for dep in spec.dependencies():
            if not runtime.fetch_to_node(
                dep,
                node,
                cancelled=lambda: self._stale(state, incarnation),
                interrupt=interrupt,
            ):
                return None
        args, kwargs, input_error = resolve_args(node, spec)
        if input_error is not None:
            self._kill_forever(state, cause=input_error)
            return None
        try:
            # A restarted incarnation re-runs __init__, which may resubmit
            # children the first incarnation already created.
            with context.execution_scope(
                runtime, node, spec.task_id, None, is_replay=incarnation > 0
            ):
                instance = state.cls(*args, **kwargs)
        except BaseException as exc:  # noqa: BLE001
            self._kill_forever(
                state, cause=TaskExecutionError(spec.task_id, exc)
            )
            return None
        runtime.gcs.update_task_status(
            spec.task_id, TaskStatus.FINISHED, node_id=node.node_id
        )
        return instance

    def _restore_checkpoint(self, state: ActorState, instance: Any) -> int:
        ckpt = self.runtime.gcs.kv.get((_ACTOR_CKPT, state.actor_id))
        if ckpt is None:
            return 0
        counter, blob = ckpt
        payload = deserialize(blob)
        if hasattr(instance, "restore_checkpoint"):
            instance.restore_checkpoint(payload)
        else:
            instance.__dict__.update(payload)
        return counter

    def _rebuild_mailbox(self, state: ActorState, from_counter: int, log) -> None:
        """Refill the mailbox from the durable method log (lock held).

        ``log`` is the method log, read by the caller *before* taking the
        condition — fetching it here would issue a GCS RPC under the lock.
        ``from_counter`` is the checkpoint we restored to.  Methods with
        counters in [from_counter, replay_boundary) are replays; whether
        each is actually re-executed (vs skipped as read-only) is decided
        at execution time.
        """
        for spec in log:
            if spec.actor_counter >= from_counter:
                state.mailbox.setdefault(spec.actor_counter, spec)

    def _execute_method(
        self,
        state: ActorState,
        incarnation: int,
        node: "Node",
        instance: Any,
        spec: TaskSpec,
        interrupt: Completion,
    ) -> None:
        runtime = self.runtime
        gcs = runtime.gcs
        if runtime.is_cancelled(spec.task_id):
            # A cancelled method is *flagged*, never dequeued: the mailbox
            # must stay counter-contiguous or the actor loop would block
            # forever on the gap.  Skip execution here, still advancing the
            # counter and storing cancelled outputs for any waiting get().
            self._skip_cancelled_method(state, node, spec)
            return
        with state.cond:
            is_replay = spec.actor_counter < state.replay_boundary
        if is_replay and spec.is_read_only:
            # Read-only methods do not mutate state: skip replaying them if
            # their outputs still exist (the Section 5.1 optimization).
            if all(
                runtime.transfer.live_locations(oid) for oid in spec.return_ids
            ):
                with state.cond:
                    state.next_counter = spec.actor_counter + 1
                    state.cond.notify_all()  # wake quiesce_actor waiters
                return
        if is_replay:
            with self._lock:
                self.replayed_methods += 1
        runtime.trace_event(
            "task_scheduled",
            task=spec.task_id.hex()[:8],
            name=spec.function_name,
            node=node.node_id.hex()[:8],
            t=time.perf_counter(),
        )
        runtime.fetcher.prefetch(spec.dependencies(), node)
        for dep in spec.dependencies():
            if not runtime.fetch_to_node(
                dep,
                node,
                cancelled=lambda: self._stale(state, incarnation),
                interrupt=interrupt,
            ):
                return
        runtime.trace_event(
            "task_inputs_ready",
            task=spec.task_id.hex()[:8],
            name=spec.function_name,
            node=node.node_id.hex()[:8],
            t=time.perf_counter(),
        )
        gcs.update_task_status(spec.task_id, TaskStatus.RUNNING, node_id=node.node_id)
        started = time.perf_counter()
        status = TaskStatus.FINISHED
        deps = spec.dependencies()
        pin_inputs(runtime, node, deps)
        args, kwargs, input_error = resolve_args(node, spec)
        if input_error is not None:
            values = [input_error] * spec.num_returns
        else:
            method = getattr(instance, spec.actor_method)
            attempt = 0
            while True:
                try:
                    # Replayed methods (and retry attempts after a partial
                    # failure) may resubmit children that already exist.
                    with context.execution_scope(
                        runtime,
                        node,
                        spec.task_id,
                        dict(spec.resources),
                        is_replay=is_replay or attempt > 0,
                    ):
                        output = method(*args, **kwargs)
                    values = normalize_returns(spec, output)
                    break
                except TaskCancelledError as exc:
                    status = TaskStatus.CANCELLED
                    values = [exc] * spec.num_returns
                    break
                except NodeDiedError:
                    # Never retried in place: bubble to the actor loop's
                    # quiet-exit path; the restart replays this method.
                    raise
                except BaseException as exc:  # noqa: BLE001
                    if should_retry(spec, exc, attempt) and not (
                        runtime.is_cancelled(spec.task_id)
                    ):
                        # In-place retry: the attempt is invisible to the
                        # method counter, so a retried method still counts
                        # once toward checkpoint_interval.
                        runtime.record_task_retry(spec, exc, attempt)
                        time.sleep(retry_delay(runtime, attempt))
                        attempt += 1
                        continue
                    status = TaskStatus.FAILED
                    values = [
                        TaskExecutionError(spec.task_id, exc)
                    ] * spec.num_returns
                    break
        entries = store_outputs(runtime, node, spec, values, publish=False)
        for dep in deps:
            node.store.unpin(dep)
        with state.cond:
            state.next_counter = spec.actor_counter + 1
            executed = state.next_counter
            state.cond.notify_all()  # wake quiesce_actor waiters
        duration = time.perf_counter() - started
        gcs.finish_task(
            spec.task_id,
            status,
            node.node_id,
            entries,
            event=(
                "task_finished",
                dict(
                    task=spec.task_id.short(),
                    name=spec.function_name,
                    node=node.node_id.short(),
                    start=started,
                    duration=duration,
                    status=status.value,
                    kind="actor_method",
                ),
            ),
            batched=runtime.config.gcs_batched_writes,
            spec=spec,
        )
        gcs.update_actor(state.actor_id, methods_executed=executed)
        runtime.report_task_duration(duration)
        runtime.discard_cancellation_event(spec.task_id)
        if (
            state.checkpoint_interval
            and executed % state.checkpoint_interval == 0
        ):
            self._save_checkpoint(state, instance, executed)

    def _skip_cancelled_method(
        self, state: ActorState, node: "Node", spec: TaskSpec
    ) -> None:
        """Advance past a cancelled mailbox entry without running it."""
        runtime = self.runtime
        error = TaskCancelledError(spec.task_id)
        entries = store_outputs(
            runtime, node, spec, [error] * spec.num_returns, publish=False
        )
        with state.cond:
            state.next_counter = spec.actor_counter + 1
            executed = state.next_counter
            state.cond.notify_all()  # wake quiesce_actor waiters
        runtime.gcs.finish_task(
            spec.task_id,
            TaskStatus.CANCELLED,
            node.node_id,
            entries,
            event=(
                "task_finished",
                dict(
                    task=spec.task_id.short(),
                    name=spec.function_name,
                    node=node.node_id.short(),
                    start=time.perf_counter(),
                    duration=0.0,
                    status=TaskStatus.CANCELLED.value,
                    kind="actor_method",
                ),
            ),
            batched=runtime.config.gcs_batched_writes,
            spec=spec,
        )
        runtime.gcs.update_actor(state.actor_id, methods_executed=executed)

    def _save_checkpoint(self, state: ActorState, instance: Any, counter: int) -> None:
        if hasattr(instance, "save_checkpoint"):
            payload = instance.save_checkpoint()
        else:
            payload = dict(instance.__dict__)
        # Seal: the checkpoint must not alias live actor state (the actor
        # keeps mutating its arrays after the snapshot is taken).
        blob = serialize(payload).seal()
        self.runtime.gcs.kv.put((_ACTOR_CKPT, state.actor_id), (counter, blob))
        self.runtime.gcs.update_actor(state.actor_id, checkpoint_index=counter)
        with self._lock:
            self.checkpoints_taken += 1

    # ------------------------------------------------------------------
    # Naming
    # ------------------------------------------------------------------

    def get_by_name(self, name: str) -> Optional[ActorState]:
        """Resolve a user-visible name to its live actor (or None)."""
        actor_id = self.runtime.gcs.lookup_actor_name(name)
        if actor_id is None:
            return None
        with self._lock:
            state = self.actors.get(actor_id)
        if state is None or state.dead_forever:
            return None
        return state

    def _release_name(self, state: ActorState) -> None:
        """Free the actor's name on permanent death (idempotent)."""
        name, state.name = state.name, None
        if name is not None:
            self.runtime.gcs.release_actor_name(name, state.actor_id)

    # ------------------------------------------------------------------
    # Failure handling
    # ------------------------------------------------------------------

    def on_node_death(self, node_id: NodeID) -> None:
        """Restart (or permanently fail) every actor that lived on the node."""
        with self._lock:
            victims = [
                state
                for state in self.actors.values()
                if state.node is not None
                and state.node.node_id == node_id
                and not state.dead_forever
            ]
        for state in victims:
            self.restart_actor(state)

    def restart_actor(self, state: ActorState, count_restart: bool = True) -> None:
        """Restart an actor's incarnation.

        ``count_restart=False`` is used for reconstruction-driven replays
        (lost outputs): they are part of normal recovery and must not eat
        into the failure budget (``max_restarts``).
        """
        with state.cond:
            if count_restart:
                state.restarts += 1
            if state.restarts > state.max_restarts:
                state.dead_forever = True
                state.incarnation += 1  # unblock any old loop
                state.interrupt.set()
                state.cond.notify_all()
        if state.dead_forever:
            self._fail_pending_methods(state)
            self._release_name(state)
            self.runtime.gcs.update_actor(state.actor_id, alive=False)
            return
        self.runtime.gcs.update_actor(state.actor_id, alive=False)
        self._start_incarnation(state)

    def kill_actor(self, actor_id: ActorID, restart: bool = True) -> None:
        """Simulate an actor process crash (without killing the node)."""
        with self._lock:
            state = self.actors.get(actor_id)
        if state is None:
            raise ActorDiedError(f"unknown actor {actor_id!r}")
        if restart:
            self.restart_actor(state)
        else:
            with state.cond:
                state.dead_forever = True
                state.incarnation += 1
                state.interrupt.set()
                state.cond.notify_all()
            self._fail_pending_methods(state)
            self._release_name(state)
            self.runtime.gcs.update_actor(state.actor_id, alive=False)

    def _kill_forever(self, state: ActorState, cause: TaskExecutionError) -> None:
        with state.cond:
            state.dead_forever = True
            state.interrupt.set()
            state.cond.notify_all()
        self.runtime.gcs.update_task_status(
            state.creation_spec.task_id, TaskStatus.FAILED
        )
        self._release_name(state)
        self.runtime.gcs.update_actor(state.actor_id, alive=False)
        self._fail_pending_methods(state, cause)

    def _fail_pending_methods(
        self, state: ActorState, cause: Optional[BaseException] = None
    ) -> None:
        """Write ActorDiedError outputs for methods that will never run."""
        log = self.runtime.gcs.kv.log((_ACTOR_LOG, state.actor_id))
        node = self.runtime.driver_node
        with state.cond:
            executed = state.next_counter
        for spec in log:
            if spec.actor_counter >= executed and not any(
                self.runtime.transfer.live_locations(oid)
                for oid in spec.return_ids
            ):
                error = TaskExecutionError(
                    spec.task_id,
                    cause
                    or ActorDiedError(
                        f"actor {state.class_name} died permanently"
                    ),
                )
                store_outputs(self.runtime, node, spec, [error] * spec.num_returns)

    # ------------------------------------------------------------------
    # Reconstruction entry point (object fetch path)
    # ------------------------------------------------------------------

    def reconstruct_for_object(self, actor_id: ActorID) -> None:
        """An actor method output was lost: replay the actor from its last
        checkpoint (stateful-edge reconstruction)."""
        with self._lock:
            state = self.actors.get(actor_id)
        if state is None or state.dead_forever:
            return
        self.restart_actor(state, count_restart=False)

    def get_state(self, actor_id: ActorID) -> Optional[ActorState]:
        with self._lock:
            return self.actors.get(actor_id)

    # ------------------------------------------------------------------
    # Graceful retirement (serve hot-swap drain hook)
    # ------------------------------------------------------------------

    def quiesce_actor(
        self, actor_id: ActorID, timeout: Optional[float] = None
    ) -> bool:
        """Block until every submitted method has executed, or the actor is
        permanently dead.  Returns True when drained, False on timeout.

        The caller is responsible for stopping new submissions first (the
        serve router unroutes a replica before quiescing it); this only
        waits out the in-flight mailbox.
        """
        state = self.get_state(actor_id)
        if state is None:
            return True
        deadline = None if timeout is None else time.monotonic() + timeout
        with state.cond:
            while not (state.dead_forever or state.next_counter >= state.submitted):
                wait_for = BACKSTOP_INTERVAL
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                    wait_for = min(wait_for, remaining)
                state.cond.wait(wait_for)
            return True

    def drain_actor(
        self, actor_id: ActorID, timeout: Optional[float] = None
    ) -> bool:
        """Quiesce then permanently kill the actor (no restart): graceful
        retirement, used by serve's versioned hot model-swap.  Returns the
        quiesce verdict (False means the kill proceeded after a timeout
        with methods still pending)."""
        drained = self.quiesce_actor(actor_id, timeout=timeout)
        with self._lock:
            known = actor_id in self.actors
        if known:
            self.kill_actor(actor_id, restart=False)
        return drained

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def shutdown(self, timeout: float = 2.0) -> None:
        """Interrupt every actor loop and join its thread.

        Called with ``runtime.stopped`` already True, so woken loops see
        themselves stale and exit.  A loop stuck in user code past the
        join timeout is abandoned (it is a daemon thread)."""
        with self._lock:
            states = list(self.actors.values())
        for state in states:
            with state.cond:
                state.interrupt.set()
                state.cond.notify_all()
        current = threading.current_thread()
        for state in states:
            thread = state.thread
            if thread is not None and thread is not current:
                thread.join(timeout=timeout)
