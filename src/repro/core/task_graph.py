"""The dynamic task graph (paper Section 3.2, Figure 4).

Nodes are *data objects* and *tasks* (remote function invocations, actor
creations, and actor method invocations).  Edges are:

* **data edges** — task → each object it outputs; object → each task that
  consumes it;
* **control edges** — invoking task → invoked task (nested remote calls);
* **stateful edges** — actor method Mᵢ → Mᵢ₊₁ on the same actor, encoding
  the implicit dependency through the actor's mutable state.

The runtime appends to this graph as tasks are submitted; it is the basis
of the lineage used for reconstruction, and of the visualization and
debugging tooling the paper describes riding on the GCS.
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.common.lockwatch import make_lock
from repro.common.ids import ActorID, ObjectID, TaskID
from repro.core.task_spec import TaskSpec


class EdgeType(enum.Enum):
    DATA = "data"
    CONTROL = "control"
    STATEFUL = "stateful"


@dataclass(frozen=True)
class Edge:
    src: object  # TaskID or ObjectID
    dst: object
    kind: EdgeType


class TaskGraph:
    """An append-only computation graph with typed edges."""

    def __init__(self):
        self._lock = make_lock("TaskGraph._lock")
        self._tasks: Dict[TaskID, TaskSpec] = {}
        self._edges: List[Edge] = []
        self._out: Dict[object, List[Edge]] = {}
        self._in: Dict[object, List[Edge]] = {}
        self._last_actor_task: Dict[ActorID, TaskID] = {}

    def _add_edge(self, src, dst, kind: EdgeType) -> None:
        edge = Edge(src, dst, kind)
        self._edges.append(edge)
        self._out.setdefault(src, []).append(edge)
        self._in.setdefault(dst, []).append(edge)

    def add_task(self, spec: TaskSpec) -> None:
        """Record a task and all edges it induces."""
        with self._lock:
            if spec.task_id in self._tasks:
                return  # replayed task: the graph already has it
            self._tasks[spec.task_id] = spec
            # Data edges in: argument objects → task.
            for dep in spec.dependencies():
                self._add_edge(dep, spec.task_id, EdgeType.DATA)
            # Data edges out: task → return objects.
            for object_id in spec.return_ids:
                self._add_edge(spec.task_id, object_id, EdgeType.DATA)
            # Control edge: parent (submitting) task → this task.
            if spec.parent_task_id is not None and not spec.parent_task_id.is_nil():
                self._add_edge(spec.parent_task_id, spec.task_id, EdgeType.CONTROL)
            # Stateful edge: previous method on the same actor → this one.
            if spec.actor_id is not None and not spec.is_actor_creation:
                previous = self._last_actor_task.get(spec.actor_id)
                if previous is not None:
                    self._add_edge(previous, spec.task_id, EdgeType.STATEFUL)
                self._last_actor_task[spec.actor_id] = spec.task_id
            elif spec.is_actor_creation and spec.actor_id is not None:
                self._last_actor_task[spec.actor_id] = spec.task_id

    # -- queries ---------------------------------------------------------------

    def task(self, task_id: TaskID) -> Optional[TaskSpec]:
        with self._lock:
            return self._tasks.get(task_id)

    def num_tasks(self) -> int:
        with self._lock:
            return len(self._tasks)

    def edges(self, kind: Optional[EdgeType] = None) -> List[Edge]:
        with self._lock:
            if kind is None:
                return list(self._edges)
            return [e for e in self._edges if e.kind == kind]

    def producer_of(self, object_id: ObjectID) -> Optional[TaskID]:
        with self._lock:
            for edge in self._in.get(object_id, ()):
                if edge.kind == EdgeType.DATA and isinstance(edge.src, TaskID):
                    return edge.src
            return None

    def consumers_of(self, object_id: ObjectID) -> List[TaskID]:
        with self._lock:
            return [
                e.dst
                for e in self._out.get(object_id, ())
                if e.kind == EdgeType.DATA
            ]

    def predecessors_of(self, task_id: TaskID) -> List[TaskID]:
        """Tasks that must *finish* before ``task_id`` can run: producers
        of its data dependencies plus its stateful predecessor (control
        edges are excluded — a parent merely submits the child mid-run)."""
        with self._lock:
            out: List[TaskID] = []
            for edge in self._in.get(task_id, ()):
                if edge.kind == EdgeType.STATEFUL and isinstance(edge.src, TaskID):
                    out.append(edge.src)
                elif edge.kind == EdgeType.DATA and isinstance(edge.src, ObjectID):
                    for producer_edge in self._in.get(edge.src, ()):
                        if producer_edge.kind == EdgeType.DATA and isinstance(
                            producer_edge.src, TaskID
                        ):
                            out.append(producer_edge.src)
            return out

    def task_ids(self) -> List[TaskID]:
        with self._lock:
            return list(self._tasks)

    def children_of(self, task_id: TaskID) -> List[TaskID]:
        """Tasks invoked by ``task_id`` (control edges out)."""
        with self._lock:
            return [
                e.dst
                for e in self._out.get(task_id, ())
                if e.kind == EdgeType.CONTROL
            ]

    def stateful_chain(self, actor_id: ActorID) -> List[TaskID]:
        """All method tasks of an actor, in stateful-edge order."""
        with self._lock:
            chain_tasks = [
                tid
                for tid, spec in self._tasks.items()
                if spec.actor_id == actor_id and not spec.is_actor_creation
            ]
            return sorted(chain_tasks, key=lambda t: self._tasks[t].actor_counter)

    def ancestors(self, object_id: ObjectID) -> Set[TaskID]:
        """Transitive lineage of an object: every task it depends on."""
        result: Set[TaskID] = set()
        frontier = [object_id]
        while frontier:
            current = frontier.pop()
            producer = self.producer_of(current)
            if producer is None or producer in result:
                continue
            result.add(producer)
            spec = self.task(producer)
            if spec is not None:
                frontier.extend(spec.dependencies())
        return result

    def to_dot(self) -> str:
        """Graphviz rendering, for the debugging tools of Section 7."""
        lines = ["digraph task_graph {"]
        with self._lock:
            for task_id, spec in self._tasks.items():
                lines.append(
                    f'  "{task_id.hex()[:8]}" [shape=box label="{spec.function_name}"];'
                )
            seen_objects = set()
            for edge in self._edges:
                for endpoint in (edge.src, edge.dst):
                    if isinstance(endpoint, ObjectID) and endpoint not in seen_objects:
                        seen_objects.add(endpoint)
                        lines.append(
                            f'  "{endpoint.hex()[:8]}" [shape=ellipse label="obj"];'
                        )
                style = {
                    EdgeType.DATA: "solid",
                    EdgeType.CONTROL: "dashed",
                    EdgeType.STATEFUL: "bold",
                }[edge.kind]
                lines.append(
                    f'  "{edge.src.hex()[:8]}" -> "{edge.dst.hex()[:8]}" [style={style}];'
                )
        lines.append("}")
        return "\n".join(lines)
