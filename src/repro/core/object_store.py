"""Per-node in-memory object store.

Each node runs one store holding immutable, serialized objects (paper
Section 4.2.3).  Properties reproduced from the paper:

* **Immutability** — a ``put`` for an ID that already exists is a no-op
  (and is how replayed tasks stay idempotent).
* **Locality** — tasks only ever read inputs from their node's store; the
  transfer service replicates remote inputs in first.
* **LRU eviction** — when capacity is exceeded, the least-recently-used
  unpinned objects are evicted.  With a ``spill_directory`` configured the
  evicted copy goes to disk and is transparently reloaded on access (the
  paper: "we keep objects entirely in memory and evict them as needed to
  disk using an LRU policy"); without one the copy is dropped and lineage
  reconstruction recovers it on demand.  Objects pinned by executing
  tasks are never evicted.
* **Zero-copy reads** — the analogue of Plasma's shared-memory reads: a
  per-node :class:`DeserializedValueCache` holds the deserialized value of
  recently read objects, so repeated same-node reads of an immutable
  object pay ``pickle.loads`` once.  Coherence rule: a cached value exists
  only while the serialized copy is resident in memory; any removal
  (delete, LRU eviction, spill, node loss) invalidates it, and an
  in-flight deserialization racing a removal is discarded via a per-ID
  version guard rather than cached.
* **Availability notifications** — readers wait on (or register callbacks
  against) a :class:`~repro.common.events.Completion` that is signalled
  the moment the object becomes local (Figure 7b).  All blocking readers
  in the runtime ride on these completions; nothing polls the store.
"""

from __future__ import annotations

import os
import pickle
import threading
from collections import OrderedDict
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.common.lockwatch import make_lock, make_rlock
from repro.common.errors import ObjectStoreFullError
from repro.common.events import Completion, WaitStats
from repro.common.ids import NodeID, ObjectID
from repro.common.metrics import MetricsRegistry, NULL_REGISTRY
from repro.common.serialization import SerializedObject, deserialize

DEFAULT_VALUE_CACHE_BYTES = 256 * 1024 * 1024


class DeserializedValueCache:
    """Bounded LRU cache of deserialized values, keyed by ObjectID.

    Sized and evicted independently of the serialized store: the byte
    accounting uses the serialized footprint of the source object as a
    proxy for the value's size.  Thread-safe; a leaf lock (never calls
    back into the store).
    """

    def __init__(
        self,
        capacity_bytes: Optional[int] = DEFAULT_VALUE_CACHE_BYTES,
        metrics: Optional[MetricsRegistry] = None,
        node: str = "",
    ):
        self.capacity_bytes = capacity_bytes
        self._lock = make_lock("DeserializedValueCache._lock")
        self._values: "OrderedDict[ObjectID, Tuple[Any, int]]" = OrderedDict()
        self._bytes = 0
        metrics = metrics or NULL_REGISTRY
        self._m_hits = metrics.counter(
            "value_cache_hits_total", "Reads served from the deserialized cache",
            node=node,
        )
        self._m_misses = metrics.counter(
            "value_cache_misses_total", "Reads that had to deserialize",
            node=node,
        )
        self._m_evictions = metrics.counter(
            "value_cache_evictions_total", "LRU evictions from the value cache",
            node=node,
        )
        self._m_invalidations = metrics.counter(
            "value_cache_invalidations_total",
            "Entries dropped because the serialized copy left memory",
            node=node,
        )
        metrics.gauge(
            "value_cache_bytes",
            "Serialized-size proxy of cached deserialized values",
            fn=lambda: self.used_bytes,
            node=node,
        )

    def get(self, object_id: ObjectID) -> Tuple[Any, bool]:
        """(value, hit).  A hit LRU-touches the entry."""
        with self._lock:
            entry = self._values.get(object_id)
            if entry is None:
                self._m_misses.inc()
                return None, False
            self._values.move_to_end(object_id)
            self._m_hits.inc()
            return entry[0], True

    def put(self, object_id: ObjectID, value: Any, nbytes: int) -> None:
        with self._lock:
            if object_id in self._values:
                return
            if self.capacity_bytes is not None:
                if nbytes > self.capacity_bytes:
                    return  # larger than the whole cache: never admit
                while self._bytes + nbytes > self.capacity_bytes and self._values:
                    _oid, (_val, dropped) = self._values.popitem(last=False)
                    self._bytes -= dropped
                    self._m_evictions.inc()
            self._values[object_id] = (value, nbytes)
            self._bytes += nbytes

    def invalidate(self, object_id: ObjectID) -> bool:
        with self._lock:
            entry = self._values.pop(object_id, None)
            if entry is None:
                return False
            self._bytes -= entry[1]
            self._m_invalidations.inc()
            return True

    def clear(self) -> None:
        with self._lock:
            self._values.clear()
            self._bytes = 0

    @property
    def used_bytes(self) -> int:
        with self._lock:
            return self._bytes

    def __len__(self) -> int:
        with self._lock:
            return len(self._values)

    def stats(self) -> Dict[str, float]:
        return {
            "entries": len(self),
            "bytes": self.used_bytes,
            "hits": self._m_hits.value,
            "misses": self._m_misses.value,
            "evictions": self._m_evictions.value,
            "invalidations": self._m_invalidations.value,
        }


class LocalObjectStore:
    """Thread-safe LRU object store for one node."""

    def __init__(
        self,
        node_id: NodeID,
        capacity_bytes: Optional[int] = None,
        on_evict: Optional[Callable[[ObjectID], None]] = None,
        spill_directory: Optional[str] = None,
        wait_stats: Optional[WaitStats] = None,
        metrics: Optional[MetricsRegistry] = None,
        value_cache_capacity_bytes: Optional[int] = DEFAULT_VALUE_CACHE_BYTES,
        value_cache_enabled: bool = True,
    ):
        self.node_id = node_id
        self.capacity_bytes = capacity_bytes
        self._on_evict = on_evict
        self._lock = make_rlock("LocalObjectStore._lock")
        self._objects: "OrderedDict[ObjectID, SerializedObject]" = OrderedDict()
        self._pins: Dict[ObjectID, int] = {}
        self._used_bytes = 0
        self._wait_stats = wait_stats
        self._events: Dict[ObjectID, Completion] = {}
        # Per-ID removal counter: an in-flight deserialization only enters
        # the value cache if the version it read is still current.
        self._versions: Dict[ObjectID, int] = {}
        self.put_count = 0
        self.eviction_count = 0
        self.spill_count = 0
        self.restore_count = 0
        self._spill_directory = spill_directory
        self._spilled: Dict[ObjectID, str] = {}
        if spill_directory is not None:
            os.makedirs(spill_directory, exist_ok=True)
        metrics = metrics or NULL_REGISTRY
        node = node_id.hex()[:8]
        self.value_cache: Optional[DeserializedValueCache] = None
        if value_cache_enabled:
            self.value_cache = DeserializedValueCache(
                capacity_bytes=value_cache_capacity_bytes,
                metrics=metrics,
                node=node,
            )
        self._m_puts = metrics.counter(
            "object_store_puts_total", "Objects stored (first copy)", node=node
        )
        self._m_gets = metrics.counter(
            "object_store_gets_total", "Read attempts", node=node
        )
        self._m_hits = metrics.counter(
            "object_store_hits_total", "Reads served locally", node=node
        )
        self._m_misses = metrics.counter(
            "object_store_misses_total", "Reads that found nothing", node=node
        )
        self._m_evictions = metrics.counter(
            "object_store_evictions_total", "LRU evictions (incl. spills)", node=node
        )
        self._m_evicted_bytes = metrics.counter(
            "object_store_evicted_bytes_total", "Bytes evicted by LRU", node=node
        )
        self._m_seal_bytes = metrics.counter(
            "object_store_seal_bytes_total",
            "Bytes copied sealing producer-aliased buffers at put",
            node=node,
        )
        metrics.gauge(
            "object_store_used_bytes",
            "Bytes resident in memory",
            fn=lambda: self.used_bytes,
            node=node,
        )

    # -- core operations -----------------------------------------------------

    def put(self, object_id: ObjectID, value: SerializedObject) -> bool:
        """Store ``value`` under ``object_id``.

        Returns True if stored, False if the object was already present
        (objects are immutable, so a duplicate put is a no-op).  Raises
        :class:`ObjectStoreFullError` if eviction cannot make room.

        An unowned value (zero-copy ``serialize`` output whose buffers
        alias producer memory) is sealed — copied once into store-owned
        memory — before insertion, so resident objects never change when a
        producer mutates its arrays.  Transfer-produced copies arrive
        already owned and are not copied again.
        """
        if not value.owned:
            # Seal outside the store lock: this is the write path's one copy.
            sealed = value.seal()
            self._m_seal_bytes.inc(sealed.total_bytes - len(sealed.payload))
            value = sealed
        with self._lock:
            if object_id in self._objects or object_id in self._spilled:
                return False
            if self.capacity_bytes is not None:
                if value.total_bytes > self.capacity_bytes:
                    raise ObjectStoreFullError(
                        f"object ({value.total_bytes} B) exceeds store capacity "
                        f"({self.capacity_bytes} B)"
                    )
                self._evict_until(self.capacity_bytes - value.total_bytes)
            self._objects[object_id] = value
            self._used_bytes += value.total_bytes
            self.put_count += 1
            self._m_puts.inc()
            completion = self._events.get(object_id)
        # Signal outside the store lock: waiter callbacks (scheduler input-
        # ready, fetcher bookkeeping) take their own locks.
        if completion is not None:
            completion.set()
        return True

    def get(self, object_id: ObjectID) -> Optional[SerializedObject]:
        self._m_gets.inc()
        with self._lock:
            value = self._objects.get(object_id)
            if value is not None:
                self._objects.move_to_end(object_id)  # LRU touch
                self._m_hits.inc()
                return value
            if object_id in self._spilled:
                value = self._restore_from_disk(object_id)
                if value is not None:
                    self._m_hits.inc()
                    return value
            self._m_misses.inc()
            return None

    def load_value(self, object_id: ObjectID) -> Tuple[Any, bool]:
        """Deserialized read through the per-node value cache.

        Returns ``(value, found)``; ``found`` is False when the object is
        not local.  The cache is only populated if the serialized copy is
        still resident *and unremoved* after deserialization finishes (the
        version guard), so a reader racing eviction or an explicit delete
        can never install a stale value for a reconstructed ObjectID.
        """
        cache = self.value_cache
        if cache is not None:
            value, hit = cache.get(object_id)
            if hit:
                with self._lock:
                    if object_id in self._objects:
                        self._objects.move_to_end(object_id)  # keep LRUs aligned
                return value, True
        with self._lock:
            version = self._versions.get(object_id, 0)
        serialized = self.get(object_id)
        if serialized is None:
            return None, False
        value = deserialize(serialized)
        if cache is not None:
            with self._lock:
                unchanged = (
                    self._versions.get(object_id, 0) == version
                    and object_id in self._objects
                )
            if unchanged:
                cache.put(object_id, value, serialized.total_bytes)
        return value, True

    def contains(self, object_id: ObjectID) -> bool:
        with self._lock:
            return object_id in self._objects or object_id in self._spilled

    def is_spilled(self, object_id: ObjectID) -> bool:
        with self._lock:
            return object_id in self._spilled

    def delete(self, object_id: ObjectID) -> bool:
        """Explicitly drop an object (used when a node's copy is invalidated)."""
        with self._lock:
            had_spill = object_id in self._spilled
            self._remove_spill_file(object_id)
            value = self._objects.pop(object_id, None)
            if value is None and not had_spill:
                return False
            if value is not None:
                self._used_bytes -= value.total_bytes
            self._invalidate_value(object_id)
            event = self._events.get(object_id)
            if event is not None:
                event.clear()  # waiters re-arm; a re-put sets it again
            return True

    def _invalidate_value(self, object_id: ObjectID) -> None:
        """The in-memory serialized copy is going away (lock held): bump the
        version so racing readers discard their result, and drop any cached
        deserialized value."""
        self._versions[object_id] = self._versions.get(object_id, 0) + 1
        if self.value_cache is not None:
            self.value_cache.invalidate(object_id)

    # -- pinning (inputs of executing tasks must not be evicted) -------------

    def pin(self, object_id: ObjectID) -> None:
        with self._lock:
            self._pins[object_id] = self._pins.get(object_id, 0) + 1

    def unpin(self, object_id: ObjectID) -> None:
        with self._lock:
            count = self._pins.get(object_id, 0)
            if count <= 1:
                self._pins.pop(object_id, None)
            else:
                self._pins[object_id] = count - 1

    def is_pinned(self, object_id: ObjectID) -> bool:
        with self._lock:
            return self._pins.get(object_id, 0) > 0

    # -- eviction --------------------------------------------------------------

    def _evict_until(self, target_bytes: int) -> None:
        """Evict LRU unpinned objects until used <= target.  Lock held.

        With a spill directory, evicted copies go to disk and stay
        addressable (no location retraction); otherwise they are dropped
        and the on_evict callback retracts the GCS location.  Either way
        the deserialized-value cache entry is invalidated: a cached value
        must never outlive its in-memory serialized copy (it would pin the
        very bytes eviction is trying to free).
        """
        if self._used_bytes <= target_bytes:
            return
        evicted: List[ObjectID] = []
        for object_id in list(self._objects.keys()):
            if self._used_bytes <= target_bytes:
                break
            if self._pins.get(object_id, 0) > 0:
                continue
            value = self._objects.pop(object_id)
            self._used_bytes -= value.total_bytes
            self.eviction_count += 1
            self._m_evictions.inc()
            self._m_evicted_bytes.inc(value.total_bytes)
            self._invalidate_value(object_id)
            if self._spill_directory is not None:
                self._spill_to_disk(object_id, value)
                continue  # still available: no event clear, no callback
            event = self._events.get(object_id)
            if event is not None:
                event.clear()
            evicted.append(object_id)
        if self._used_bytes > target_bytes:
            raise ObjectStoreFullError(
                "cannot make room: remaining objects are pinned"
            )
        if self._on_evict:
            for object_id in evicted:
                self._on_evict(object_id)

    # -- disk spilling (paper §4.2.3: "evict them as needed to disk") ---------

    def _spill_path(self, object_id: ObjectID) -> str:
        return os.path.join(self._spill_directory, object_id.hex())

    def _spill_to_disk(self, object_id: ObjectID, value: SerializedObject) -> None:
        path = self._spill_path(object_id)
        # memoryview buffers (transfer-striped copies) cannot be pickled;
        # materialize to bytes for the disk image.
        buffers = [
            b if isinstance(b, bytes) else bytes(b) for b in value.buffers
        ]
        with open(path, "wb") as f:
            pickle.dump((value.payload, buffers), f)
        self._spilled[object_id] = path
        self.spill_count += 1

    def _restore_from_disk(self, object_id: ObjectID) -> Optional[SerializedObject]:
        """Reload a spilled object into memory (lock held)."""
        path = self._spilled.get(object_id)
        if path is None:
            return None
        with open(path, "rb") as f:
            payload, buffers = pickle.load(f)
        value = SerializedObject(payload, buffers, owned=True)
        if self.capacity_bytes is not None:
            self._evict_until(self.capacity_bytes - value.total_bytes)
        self._remove_spill_file(object_id)
        self._objects[object_id] = value
        self._used_bytes += value.total_bytes
        self.restore_count += 1
        return value

    def _remove_spill_file(self, object_id: ObjectID) -> None:
        path = self._spilled.pop(object_id, None)
        if path is not None:
            try:
                os.remove(path)
            except OSError:
                pass

    # -- availability notifications -------------------------------------------

    def availability_event(self, object_id: ObjectID) -> Completion:
        """A completion signalled when (or already if) the object is local."""
        with self._lock:
            completion = self._events.get(object_id)
            if completion is None:
                completion = Completion(stats=self._wait_stats)
                self._events[object_id] = completion
                present = object_id in self._objects or object_id in self._spilled
            else:
                return completion
        if present:
            completion.set()
        return completion

    def on_available(
        self, object_id: ObjectID, callback: Callable[[ObjectID], None]
    ) -> None:
        """Run ``callback`` when the object becomes local (now if already)."""
        self.availability_event(object_id).add_callback(
            lambda _completion: callback(object_id)
        )

    # -- stats / lifecycle -------------------------------------------------------

    @property
    def used_bytes(self) -> int:
        with self._lock:
            return self._used_bytes

    def object_ids(self) -> List[ObjectID]:
        with self._lock:
            return list(self._objects.keys())

    def num_objects(self) -> int:
        with self._lock:
            return len(self._objects)

    def drop_all(self) -> List[ObjectID]:
        """Simulate node loss (memory *and* node-local disk).

        Returns the IDs that were lost."""
        with self._lock:
            lost = list(self._objects.keys())
            lost.extend(self._spilled.keys())
            for object_id in list(self._spilled.keys()):
                self._remove_spill_file(object_id)
            for object_id in list(self._objects.keys()):
                self._invalidate_value(object_id)
            self._objects.clear()
            self._pins.clear()
            self._used_bytes = 0
            if self.value_cache is not None:
                self.value_cache.clear()
            for event in self._events.values():
                event.clear()
            return lost
