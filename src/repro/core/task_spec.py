"""Task specifications — the durable unit of lineage.

A :class:`TaskSpec` fully describes one remote function invocation or actor
method call: which function, which arguments (by value or by object
reference), how many return values, and what resources it needs.  Specs are
stored in the GCS task table; re-submitting a spec re-executes the task and
— because return object IDs are a pure function of the task ID — rewrites
exactly the objects the original execution produced.  That property is what
makes lineage replay idempotent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.common.ids import ActorID, FunctionID, ObjectID, TaskID
from repro.common.lockwatch import make_lock


@dataclass(frozen=True)
class ArgRef:
    """Marks an argument passed by object reference (a future)."""

    object_id: ObjectID

    def __repr__(self) -> str:
        return f"ArgRef({self.object_id.hex()[:10]})"


@dataclass(frozen=True)
class TaskSpec:
    """Immutable description of one task (or actor method / creation)."""

    task_id: TaskID
    function_id: FunctionID
    function_name: str
    args: Tuple[Any, ...]
    kwargs: Tuple[Tuple[str, Any], ...]
    num_returns: int
    resources: Dict[str, float] = field(default_factory=lambda: {"CPU": 1.0})
    parent_task_id: Optional[TaskID] = None
    # Actor fields: exactly one incarnation of {plain task, actor creation,
    # actor method} applies.
    actor_id: Optional[ActorID] = None
    actor_method: Optional[str] = None
    actor_counter: int = -1
    is_actor_creation: bool = False
    # Read-only methods do not mutate actor state, so reconstruction can
    # skip replaying them (the paper's Section 5.1 future-work item).
    is_read_only: bool = False
    # App-level retry policy: on an application exception the task is
    # re-attempted in place (exponential backoff) up to ``max_retries``
    # times.  ``retry_exceptions`` limits which exception types qualify
    # (None = any Exception).  Distinct from lineage reconstruction, which
    # recovers *lost objects* by replaying already-successful tasks.
    max_retries: int = 0
    retry_exceptions: Optional[Tuple[type, ...]] = None

    def __post_init__(self):
        if self.num_returns < 0:
            raise ValueError("num_returns must be >= 0")
        if self.actor_method is not None and self.actor_id is None:
            raise ValueError("actor method spec requires an actor_id")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")

    @property
    def is_actor_method(self) -> bool:
        return self.actor_method is not None

    @property
    def return_ids(self) -> Tuple[ObjectID, ...]:
        # Memoized: deriving a return ID hashes the task ID, and the hot
        # path asks for the tuple several times per task (submit, dispatch,
        # output write, get).  Frozen dataclasses still carry a __dict__,
        # so the memo bypasses the blocked __setattr__.
        cached = self.__dict__.get("_return_ids")
        if cached is None:
            cached = tuple(
                ObjectID.for_task_return(self.task_id, i)
                for i in range(self.num_returns)
            )
            object.__setattr__(self, "_return_ids", cached)
        return cached

    def dependencies(self) -> Tuple[ObjectID, ...]:
        """Object IDs this task needs before it can execute (data edges in)."""
        deps = []
        for arg in self.args:
            if isinstance(arg, ArgRef):
                deps.append(arg.object_id)
        for _name, value in self.kwargs:
            if isinstance(value, ArgRef):
                deps.append(value.object_id)
        return tuple(deps)

    def describe(self) -> str:
        kind = (
            "actor_creation"
            if self.is_actor_creation
            else "actor_method"
            if self.is_actor_method
            else "task"
        )
        return f"{kind}:{self.function_name}#{self.task_id.hex()[:8]}"


@dataclass(frozen=True)
class TaskShape:
    """The per-function-invocation fields every call of one remote function
    shares: identity, return arity, resource request, retry policy.

    Interning the shape means repeated submissions of the same function
    reuse one canonical ``resources`` dict (specs never mutate it — readers
    copy when they need ownership) instead of re-normalizing and copying a
    fresh dict per call, which is measurable at high task rates.
    """

    function_id: FunctionID
    function_name: str
    num_returns: int
    resources: Dict[str, float]
    max_retries: int = 0
    retry_exceptions: Optional[Tuple[type, ...]] = None


_shape_lock = make_lock("task_spec._shape_lock")
_shape_cache: Dict[Tuple, TaskShape] = {}


def intern_shape(
    function_id: FunctionID,
    function_name: str,
    num_returns: int,
    resources: Dict[str, float],
    max_retries: int = 0,
    retry_exceptions: Optional[Tuple[type, ...]] = None,
) -> TaskShape:
    """Canonical :class:`TaskShape` for ``(function, returns, resources,
    retry policy)`` — one shared instance per distinct shape."""
    key = (
        function_id,
        function_name,
        num_returns,
        tuple(sorted(resources.items())),
        max_retries,
        retry_exceptions,
    )
    with _shape_lock:
        shape = _shape_cache.get(key)
        if shape is None:
            shape = TaskShape(
                function_id=function_id,
                function_name=function_name,
                num_returns=num_returns,
                resources=dict(resources),
                max_retries=max_retries,
                retry_exceptions=retry_exceptions,
            )
            _shape_cache[key] = shape
    return shape
