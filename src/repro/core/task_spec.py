"""Task specifications — the durable unit of lineage.

A :class:`TaskSpec` fully describes one remote function invocation or actor
method call: which function, which arguments (by value or by object
reference), how many return values, and what resources it needs.  Specs are
stored in the GCS task table; re-submitting a spec re-executes the task and
— because return object IDs are a pure function of the task ID — rewrites
exactly the objects the original execution produced.  That property is what
makes lineage replay idempotent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.common.ids import ActorID, FunctionID, ObjectID, TaskID


@dataclass(frozen=True)
class ArgRef:
    """Marks an argument passed by object reference (a future)."""

    object_id: ObjectID

    def __repr__(self) -> str:
        return f"ArgRef({self.object_id.hex()[:10]})"


@dataclass(frozen=True)
class TaskSpec:
    """Immutable description of one task (or actor method / creation)."""

    task_id: TaskID
    function_id: FunctionID
    function_name: str
    args: Tuple[Any, ...]
    kwargs: Tuple[Tuple[str, Any], ...]
    num_returns: int
    resources: Dict[str, float] = field(default_factory=lambda: {"CPU": 1.0})
    parent_task_id: Optional[TaskID] = None
    # Actor fields: exactly one incarnation of {plain task, actor creation,
    # actor method} applies.
    actor_id: Optional[ActorID] = None
    actor_method: Optional[str] = None
    actor_counter: int = -1
    is_actor_creation: bool = False
    # Read-only methods do not mutate actor state, so reconstruction can
    # skip replaying them (the paper's Section 5.1 future-work item).
    is_read_only: bool = False
    # App-level retry policy: on an application exception the task is
    # re-attempted in place (exponential backoff) up to ``max_retries``
    # times.  ``retry_exceptions`` limits which exception types qualify
    # (None = any Exception).  Distinct from lineage reconstruction, which
    # recovers *lost objects* by replaying already-successful tasks.
    max_retries: int = 0
    retry_exceptions: Optional[Tuple[type, ...]] = None

    def __post_init__(self):
        if self.num_returns < 0:
            raise ValueError("num_returns must be >= 0")
        if self.actor_method is not None and self.actor_id is None:
            raise ValueError("actor method spec requires an actor_id")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")

    @property
    def is_actor_method(self) -> bool:
        return self.actor_method is not None

    @property
    def return_ids(self) -> Tuple[ObjectID, ...]:
        return tuple(
            ObjectID.for_task_return(self.task_id, i)
            for i in range(self.num_returns)
        )

    def dependencies(self) -> Tuple[ObjectID, ...]:
        """Object IDs this task needs before it can execute (data edges in)."""
        deps = []
        for arg in self.args:
            if isinstance(arg, ArgRef):
                deps.append(arg.object_id)
        for _name, value in self.kwargs:
            if isinstance(value, ArgRef):
                deps.append(value.object_id)
        return tuple(deps)

    def describe(self) -> str:
        kind = (
            "actor_creation"
            if self.is_actor_creation
            else "actor_method"
            if self.is_actor_method
            else "task"
        )
        return f"{kind}:{self.function_name}#{self.task_id.hex()[:8]}"
