"""Resource accounting for nodes.

Ray lets developers attach resource requirements (CPUs, GPUs, custom
resources) to tasks and actors; schedulers use them both for feasibility
(a node without a GPU can never run a GPU task) and for load decisions.

A :class:`ResourcePool` tracks one node's total and available resources.
Acquisition is all-or-nothing.  A worker that *blocks* (e.g. in ``get``)
temporarily releases its resources so the node can keep executing — this
mirrors Ray's handling of nested tasks and prevents deadlock when a parent
task waits on children.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional
from repro.common.lockwatch import make_condition

ResourceDict = Dict[str, float]

DEFAULT_TASK_RESOURCES: ResourceDict = {"CPU": 1.0}


def normalize_resources(
    num_cpus: Optional[float] = None,
    num_gpus: Optional[float] = None,
    resources: Optional[ResourceDict] = None,
    default_cpus: float = 1.0,
) -> ResourceDict:
    """Build a canonical resource request dict from API arguments."""
    request: ResourceDict = {}
    request["CPU"] = float(num_cpus) if num_cpus is not None else default_cpus
    if num_gpus:
        request["GPU"] = float(num_gpus)
    for name, amount in (resources or {}).items():
        if name in ("CPU", "GPU"):
            raise ValueError(f"pass {name} via num_cpus/num_gpus, not resources=")
        if amount < 0:
            raise ValueError(f"negative resource amount for {name!r}")
        request[name] = float(amount)
    if request["CPU"] < 0:
        raise ValueError("negative CPU request")
    return {k: v for k, v in request.items() if v > 0 or k == "CPU"}


class ResourcePool:
    """Thread-safe resource ledger for one node."""

    def __init__(self, total: ResourceDict):
        for name, amount in total.items():
            if amount < 0:
                raise ValueError(f"negative capacity for {name!r}")
        self._total: ResourceDict = dict(total)
        self._available: ResourceDict = dict(total)
        self._cond = make_condition("ResourcePool._cond")
        self._release_listeners = []

    def add_release_listener(self, callback) -> None:
        """Register a callback invoked (without locks held) after every
        release — used by node dispatchers to re-examine their queues."""
        self._release_listeners.append(callback)

    @property
    def total(self) -> ResourceDict:
        return dict(self._total)

    def available(self) -> ResourceDict:
        with self._cond:
            return dict(self._available)

    def can_ever_satisfy(self, request: ResourceDict) -> bool:
        """Feasibility: could this node run the task when fully idle?"""
        return all(self._total.get(name, 0.0) >= amount for name, amount in request.items())

    def can_acquire_now(self, request: ResourceDict) -> bool:
        with self._cond:
            return self._fits(request)

    def _fits(self, request: ResourceDict) -> bool:
        return all(
            self._available.get(name, 0.0) >= amount - 1e-9
            for name, amount in request.items()
        )

    def try_acquire(self, request: ResourceDict) -> bool:
        with self._cond:
            if not self._fits(request):
                return False
            for name, amount in request.items():
                self._available[name] = self._available.get(name, 0.0) - amount
            return True

    def acquire(self, request: ResourceDict, timeout: Optional[float] = None) -> bool:
        """Block until the request fits, then take it.  Returns False on
        timeout (the caller must not assume the resources are held)."""
        with self._cond:
            acquired = self._cond.wait_for(
                lambda: self._fits(request), timeout=timeout
            )
            if not acquired:
                return False
            for name, amount in request.items():
                self._available[name] = self._available.get(name, 0.0) - amount
            return True

    def release(self, request: ResourceDict) -> None:
        with self._cond:
            for name, amount in request.items():
                new_value = self._available.get(name, 0.0) + amount
                if new_value > self._total.get(name, 0.0) + 1e-9:
                    raise ValueError(
                        f"release of {name!r} exceeds capacity "
                        f"({new_value} > {self._total.get(name, 0.0)})"
                    )
                self._available[name] = new_value
            self._cond.notify_all()
        for callback in self._release_listeners:
            callback()

    def utilization(self, name: str = "CPU") -> float:
        with self._cond:
            total = self._total.get(name, 0.0)
            if total == 0:
                return 0.0
            return 1.0 - self._available.get(name, 0.0) / total
