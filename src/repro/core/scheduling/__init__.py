"""Pluggable scheduler policy layer (paper §4.2.2 as a policy *space*).

One :class:`SchedulerPolicy` interface is shared by the live runtime
(``repro.init(scheduler_policy=...)``) and the discrete-event simulator
(``SimConfig(scheduler_policy=...)``): a policy observes a read-only
:class:`ClusterView` and returns a :class:`Placement`.  The spillback
decision in each local scheduler sits behind the companion
:class:`SpillbackPolicy`.  See ``docs/SCHEDULING.md`` for the contract and
``scripts/bench_scheduling.py`` for the league table that races every
registered policy.
"""

from repro.core.scheduling.registry import (
    available_policies,
    available_spillbacks,
    make_policy,
    make_spillback,
    register_policy,
    register_spillback,
)
from repro.core.scheduling.view import (
    ClusterView,
    DepInfo,
    NodeView,
    RuntimeNodeView,
    SimNodeView,
    TaskView,
)
from repro.core.scheduling.policies import (
    CentralQueuePolicy,
    LocalityPolicy,
    LowestEstimatedWaitPolicy,
    Placement,
    PowerOfTwoPolicy,
    RoundRobinPolicy,
    SchedulerPolicy,
    TIE_EPSILON,
)
from repro.core.scheduling.spillback import (
    AlwaysSpillback,
    NeverSpillback,
    SpillbackPolicy,
    ThresholdSpillback,
)

__all__ = [
    "AlwaysSpillback",
    "CentralQueuePolicy",
    "ClusterView",
    "DepInfo",
    "LocalityPolicy",
    "LowestEstimatedWaitPolicy",
    "NeverSpillback",
    "NodeView",
    "Placement",
    "PowerOfTwoPolicy",
    "RoundRobinPolicy",
    "RuntimeNodeView",
    "SchedulerPolicy",
    "SimNodeView",
    "SpillbackPolicy",
    "TaskView",
    "ThresholdSpillback",
    "TIE_EPSILON",
    "available_policies",
    "available_spillbacks",
    "make_policy",
    "make_spillback",
    "register_policy",
    "register_spillback",
]
