"""Name → factory registries for scheduler and spillback policies.

``repro.init(scheduler_policy="locality")``, ``SimConfig``, and the league
benchmark all resolve policies here; registering a class makes it
available to every layer at once:

    from repro.core.scheduling import SchedulerPolicy, register_policy

    @register_policy("my_policy")
    class MyPolicy(SchedulerPolicy):
        name = "my_policy"
        def place(self, task, view):
            ...

String lookups construct a **fresh instance per call** so per-scheduler
state (tie-break counters, sampling RNGs) is never shared between
scheduler replicas; passing an instance uses that exact object.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List

_POLICIES: Dict[str, Callable[..., Any]] = {}
_SPILLBACKS: Dict[str, Callable[..., Any]] = {}


def register_policy(name: str, factory: Callable[..., Any] = None):
    """Register a scheduler policy factory (usable as a class decorator)."""

    def _register(target):
        if name in _POLICIES:
            raise ValueError(f"scheduler policy {name!r} already registered")
        _POLICIES[name] = target
        return target

    return _register(factory) if factory is not None else _register


def register_spillback(name: str, factory: Callable[..., Any] = None):
    """Register a spillback policy factory (usable as a class decorator)."""

    def _register(target):
        if name in _SPILLBACKS:
            raise ValueError(f"spillback policy {name!r} already registered")
        _SPILLBACKS[name] = target
        return target

    return _register(factory) if factory is not None else _register


def available_policies() -> List[str]:
    """Registered scheduler policy names, sorted."""
    return sorted(_POLICIES)


def available_spillbacks() -> List[str]:
    return sorted(_SPILLBACKS)


def make_policy(spec: Any = None, **kwargs: Any):
    """Resolve ``spec`` (name | class | instance | None) to a policy object.

    ``None`` resolves to the default ``lowest_wait`` policy.  Keyword
    arguments are forwarded to the factory (ignored for instances).
    """
    if spec is None:
        spec = "lowest_wait"
    if isinstance(spec, str):
        factory = _POLICIES.get(spec)
        if factory is None:
            raise ValueError(
                f"unknown scheduler policy {spec!r}; "
                f"registered: {', '.join(available_policies())}"
            )
        return factory(**kwargs)
    if isinstance(spec, type):
        return spec(**kwargs)
    return spec


def make_spillback(spec: Any = None, threshold: int = 16):
    """Resolve ``spec`` (name | class | instance | None) to a spillback
    policy.  ``None`` resolves to the classic backlog threshold;
    ``threshold`` parameterizes it (and any named factory accepting it)."""
    if spec is None:
        spec = "threshold"
    if isinstance(spec, str):
        factory = _SPILLBACKS.get(spec)
        if factory is None:
            raise ValueError(
                f"unknown spillback policy {spec!r}; "
                f"registered: {', '.join(available_spillbacks())}"
            )
        try:
            return factory(threshold=threshold)
        except TypeError:
            return factory()
    if isinstance(spec, type):
        try:
            return spec(threshold=threshold)
        except TypeError:
            return spec()
    return spec
