"""The scheduler policy zoo.

Every policy implements :meth:`SchedulerPolicy.place`: observe a read-only
:class:`~repro.core.scheduling.view.ClusterView`, return a
:class:`Placement`.  The same policy objects drive the live runtime
(``repro.init(scheduler_policy=...)``) and the discrete-event simulator
(``SimConfig(scheduler_policy=...)``); ``scripts/bench_scheduling.py``
races the whole registry at 100k–1M simulated tasks.

Policies must be deterministic given their constructor arguments: the
power-of-two sampler carries its own seeded RNG, and tie-breaks use
monotone counters, never wall-clock or global randomness — this is what
makes league-table runs replayable.
"""

from __future__ import annotations

import itertools
import random
from typing import Optional

from repro.core.scheduling.registry import register_policy
from repro.core.scheduling.view import ClusterView, NodeView, TaskView

# Two waiting-time estimates within this of each other count as a tie.
TIE_EPSILON = 1e-12


class Placement:
    """A policy's verdict: the chosen node, plus optional introspection."""

    __slots__ = ("node", "estimated_wait")

    def __init__(self, node: NodeView, estimated_wait: Optional[float] = None):
        self.node = node
        self.estimated_wait = estimated_wait


class SchedulerPolicy:
    """Interface contract for placement policies.

    ``place`` is called with a non-empty candidate list (alive + feasible —
    hard constraints are enforced by the caller, never by the policy) and
    must return a :class:`Placement` whose node is one of
    ``view.nodes``.  Policies may keep internal state (tie-break counters,
    sampling RNGs) but must not mutate the view.
    """

    #: Registry name; also the ``policy`` label on scheduler metrics.
    name = "abstract"

    def place(self, task: TaskView, view: ClusterView) -> Placement:
        raise NotImplementedError

    def score(self, task: TaskView, node: NodeView, view: ClusterView) -> float:
        """Estimated waiting time of ``node`` for ``task`` (lower wins).

        The default is the pure queue term; scoring policies override.
        Exposed for introspection (``GlobalScheduler.estimated_wait``).
        """
        return node.backlog() * view.avg_task_duration


@register_policy("lowest_wait")
class LowestEstimatedWaitPolicy(SchedulerPolicy):
    """The paper's §4.2.2 policy: lowest estimated waiting time.

    Score = queued work (backlog × EWMA task duration) + remote input
    bytes ÷ EWMA bandwidth, with a penalty for nodes whose resources are
    exhausted *right now* (lifetime actor reservations never appear in the
    backlog).  Near-ties round-robin so equal nodes share load.

    ``locality_aware=False`` drops the transfer term — the Figure 8a
    ablation.
    """

    name = "lowest_wait"

    def __init__(self, locality_aware: bool = True):
        self.locality_aware = locality_aware
        # itertools.count is C-implemented: atomic without a lock.
        self._tie_breaker = itertools.count()

    def score(self, task: TaskView, node: NodeView, view: ClusterView) -> float:
        queue_term = node.backlog() * view.avg_task_duration
        if not node.can_run_now(task.resources):
            queue_term += max(1.0, 10 * view.avg_task_duration)
        if not self.locality_aware:
            return queue_term
        return queue_term + view.remote_input_bytes(task, node) / view.bandwidth

    def place(self, task: TaskView, view: ClusterView) -> Placement:
        offset = next(self._tie_breaker)
        scored = [(self.score(task, node, view), node) for node in view.nodes]
        best_wait = min(score for score, _n in scored)
        ties = [node for score, node in scored if score <= best_wait + TIE_EPSILON]
        return Placement(ties[offset % len(ties)], estimated_wait=best_wait)


@register_policy("locality")
class LocalityPolicy(SchedulerPolicy):
    """Pure locality: maximize co-located input bytes.

    Ignores queue depth except as a tie-break (most local bytes first,
    then least backlog, then round-robin).  Wins on wide fan-in over large
    objects; collapses on uniform workloads, where it degenerates to
    round-robin over equally-empty nodes.
    """

    name = "locality"

    def __init__(self):
        self._tie_breaker = itertools.count()

    def score(self, task: TaskView, node: NodeView, view: ClusterView) -> float:
        # Lower is better, so local bytes count negatively; backlog breaks
        # byte-ties at a scale that never outweighs one byte of locality.
        return -view.local_input_bytes(task, node) + node.backlog() * 1e-9

    def place(self, task: TaskView, view: ClusterView) -> Placement:
        offset = next(self._tie_breaker)
        scored = [
            ((-view.local_input_bytes(task, node), node.backlog()), node)
            for node in view.nodes
        ]
        best = min(score for score, _n in scored)
        ties = [node for score, node in scored if score == best]
        return Placement(ties[offset % len(ties)])


@register_policy("power_of_two")
class PowerOfTwoPolicy(SchedulerPolicy):
    """Power of two choices: probe two random nodes, take the less loaded.

    O(1) per decision regardless of cluster size — it never scans the full
    candidate list — while still exponentially better than random
    placement (Mitzenmacher's "power of two choices" result).  The sampler
    RNG is owned and seeded, so placements are replayable.
    """

    name = "power_of_two"

    def __init__(self, seed: int = 0x5EED):
        self._rng = random.Random(seed)

    def place(self, task: TaskView, view: ClusterView) -> Placement:
        nodes = view.nodes
        if len(nodes) <= 2:
            probes = nodes
        else:
            first = self._rng.randrange(len(nodes))
            second = self._rng.randrange(len(nodes) - 1)
            if second >= first:
                second += 1
            probes = (nodes[first], nodes[second])
        best = None
        best_backlog = None
        for node in probes:
            backlog = node.backlog()
            if best_backlog is None or backlog < best_backlog:
                best, best_backlog = node, backlog
        return Placement(best)


@register_policy("round_robin")
class RoundRobinPolicy(SchedulerPolicy):
    """Cycle through the candidates, blind to load and locality.

    The floor of the league table: any informed policy should beat it on
    skewed workloads; on embarrassingly parallel uniform ones it is nearly
    optimal and pays the cheapest decision cost of the scanning policies.
    """

    name = "round_robin"

    def __init__(self):
        self._counter = itertools.count()

    def place(self, task: TaskView, view: ClusterView) -> Placement:
        return Placement(view.nodes[next(self._counter) % len(view.nodes)])


@register_policy("central_queue")
class CentralQueuePolicy(SchedulerPolicy):
    """Dask-style central scheduler: one queue, least-occupied node wins.

    Models a centralized scheduler that tracks per-worker occupancy and
    assigns each task to the emptiest worker, with no locality term ("the
    scheduler moves the data to the task").  Pair with the ``always``
    spillback policy so every task actually flows through the central
    decision point, as in Dask's single scheduler process.
    """

    name = "central_queue"

    def __init__(self):
        self._tie_breaker = itertools.count()

    def place(self, task: TaskView, view: ClusterView) -> Placement:
        offset = next(self._tie_breaker)
        backlogs = [(node.backlog(), node) for node in view.nodes]
        best = min(backlog for backlog, _n in backlogs)
        ties = [node for backlog, node in backlogs if backlog == best]
        return Placement(ties[offset % len(ties)])
