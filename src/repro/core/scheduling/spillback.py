"""Spillback policies: should a locally-submitted task go to the global
scheduler?

The paper's bottom-up scheduler (§4.2.2) forwards a task when the local
node is overloaded; what "overloaded" means is itself a policy choice, so
the decision sits behind :class:`SpillbackPolicy` in the local scheduler.
Hard constraints — a dead node, or a resource request the node can *never*
satisfy — are checked by the local scheduler before the policy is asked
and always forward.
"""

from __future__ import annotations

from repro.core.scheduling.registry import register_spillback
from repro.core.scheduling.view import NodeView, TaskView


class SpillbackPolicy:
    """Decide whether a feasible local submission should spill to global."""

    name = "abstract"

    def should_forward(self, task: TaskView, node: NodeView) -> bool:
        raise NotImplementedError

    def allows_fastpath(self, backlog: int) -> bool:
        """Whether a submission may bypass ``should_forward`` right now.

        The local scheduler's submit fast path dispatches straight to an
        idle worker when its queues are empty; ``backlog`` is the node's
        backlog at that instant (queues empty, so just the running count).
        A policy must opt in by confirming it would keep such a task local
        anyway; custom policies inherit this conservative default and stay
        on the checked path.
        """
        return False


@register_spillback("threshold")
class ThresholdSpillback(SpillbackPolicy):
    """Classic bottom-up rule: forward when the backlog hits a threshold."""

    name = "threshold"

    def __init__(self, threshold: int = 16):
        self.threshold = threshold

    def should_forward(self, task: TaskView, node: NodeView) -> bool:
        return node.backlog() >= self.threshold

    def allows_fastpath(self, backlog: int) -> bool:
        # Exactly the ``should_forward`` decision, inverted: below the
        # threshold the task would have stayed local anyway.
        return backlog < self.threshold


@register_spillback("always")
class AlwaysSpillback(SpillbackPolicy):
    """Every task goes through the global scheduler (centralized mode —
    pair with the ``central_queue`` placement policy for a Dask-style
    single decision point, or with any policy to measure the cost of
    losing the local fast path)."""

    name = "always"

    def should_forward(self, task: TaskView, node: NodeView) -> bool:
        return True


@register_spillback("never")
class NeverSpillback(SpillbackPolicy):
    """Feasible tasks always run where they were submitted (pure
    bottom-up, no load shedding — the other ablation endpoint)."""

    name = "never"

    def should_forward(self, task: TaskView, node: NodeView) -> bool:
        return False

    def allows_fastpath(self, backlog: int) -> bool:
        return True
