"""Read-only cluster state as seen by a scheduler policy.

A :class:`SchedulerPolicy` never touches a ``Node``, ``TaskSpec``,
``SimNode``, or ``SimTask`` directly.  The runtime's global scheduler and
the simulator each build the *same* view types from their own state —
per-node backlog and resource availability (heartbeats), object sizes and
locations (GCS object table), and the EWMA duration/bandwidth estimators —
which is what lets one policy object drive both layers without drift.

Dependency metadata is resolved **once per placement decision** into
``ClusterView.deps`` and shared across all candidate nodes (the runtime
previously re-fetched each dependency's GCS entry per candidate node —
O(nodes × deps) lookups per decision).
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Hashable, Mapping, Optional, Sequence, Tuple


class NodeView:
    """One candidate node: identity, load, and immediate capacity.

    ``key`` is an opaque hashable node identity; the only promise is that
    it matches the members of each :class:`DepInfo` location set from the
    same :class:`ClusterView`.  ``index`` is the node's position in the
    candidate list (a stable deterministic tie-break handle).
    """

    __slots__ = ("key", "index")

    def __init__(self, key: Hashable, index: int):
        self.key = key
        self.index = index

    def backlog(self) -> int:
        """Tasks placed on this node and not yet finished (heartbeat)."""
        raise NotImplementedError

    def can_run_now(self, resources: Mapping[str, float]) -> bool:
        """Would ``resources`` fit into what is free *right now*?"""
        raise NotImplementedError


class RuntimeNodeView(NodeView):
    """Adapter over a live :class:`repro.core.runtime.Node`."""

    __slots__ = ("node",)

    def __init__(self, node, index: int):
        super().__init__(node.node_id, index)
        self.node = node

    def backlog(self) -> int:
        return self.node.local_scheduler.backlog()

    def can_run_now(self, resources: Mapping[str, float]) -> bool:
        return self.node.resources.can_acquire_now(resources)


class SimNodeView(NodeView):
    """Adapter over a :class:`repro.sim.cluster.SimNode`."""

    __slots__ = ("node",)

    def __init__(self, node, index: int):
        super().__init__(node.index, index)
        self.node = node

    def backlog(self) -> int:
        return self.node.backlog

    def can_run_now(self, resources: Mapping[str, float]) -> bool:
        cores = self.node.cores
        if resources.get("CPU", 0) > cores.capacity - cores.in_use:
            return False
        gpus_needed = resources.get("GPU", 0)
        if gpus_needed:
            gpus = self.node.gpus
            if gpus is None or gpus_needed > gpus.capacity - gpus.in_use:
                return False
        return True


class TaskView:
    """The task being placed: resources and input-object keys.

    ``deps`` may contain duplicates (a task passing the same object twice
    pays its transfer estimate twice, matching the runtime's historical
    accounting); the *metadata lookup* is still performed once per unique
    dependency when the view is built.
    """

    __slots__ = ("key", "name", "resources", "_deps", "_deps_fn")

    def __init__(
        self,
        key: Hashable,
        name: str,
        resources: Mapping[str, float],
        deps: Optional[Tuple[Hashable, ...]] = None,
        deps_fn: Optional[Callable[[], Sequence[Hashable]]] = None,
    ):
        self.key = key
        self.name = name
        self.resources = resources
        self._deps = deps
        self._deps_fn = deps_fn

    @property
    def deps(self) -> Tuple[Hashable, ...]:
        # Lazy: the spillback fast path never needs the dependency list,
        # so TaskSpec.dependencies() only runs when a policy asks.
        if self._deps is None:
            self._deps = tuple(self._deps_fn()) if self._deps_fn else ()
        return self._deps


class DepInfo:
    """Size and current locations (node keys) of one input object."""

    __slots__ = ("size", "locations")

    def __init__(self, size: int, locations: FrozenSet[Hashable]):
        self.size = size
        self.locations = locations


class ClusterView:
    """Everything a policy may observe for one placement decision.

    * ``nodes`` — the candidate :class:`NodeView` list, already filtered to
      alive nodes that can *ever* satisfy the task's resource request
      (feasibility is a hard constraint, not a policy choice);
    * ``deps`` — per-input-object :class:`DepInfo`, resolved once for the
      decision and shared across candidates;
    * ``avg_task_duration`` / ``bandwidth`` — the layer's EWMA estimators
      (seconds per task; bytes per second, floored to be division-safe).
    """

    __slots__ = ("nodes", "deps", "avg_task_duration", "bandwidth")

    def __init__(
        self,
        nodes: Sequence[NodeView],
        deps: Dict[Hashable, DepInfo],
        avg_task_duration: float,
        bandwidth: float,
    ):
        self.nodes = nodes
        self.deps = deps
        self.avg_task_duration = avg_task_duration
        self.bandwidth = bandwidth

    def remote_input_bytes(self, task: TaskView, node: NodeView) -> int:
        """Bytes of ``task``'s inputs with no copy on ``node``."""
        total = 0
        deps = self.deps
        key = node.key
        for dep in task.deps:
            info = deps.get(dep)
            if info is not None and key not in info.locations:
                total += info.size
        return total

    def local_input_bytes(self, task: TaskView, node: NodeView) -> int:
        """Bytes of ``task``'s inputs already resident on ``node``."""
        total = 0
        deps = self.deps
        key = node.key
        for dep in task.deps:
            info = deps.get(dep)
            if info is not None and key in info.locations:
                total += info.size
        return total
