"""The real (executable) runtime: a multi-node Ray-like cluster in-process.

Submodules:

* :mod:`repro.core.runtime` — cluster assembly, nodes, driver context,
  ``get``/``put``/``wait``, failure injection (``kill_node``).
* :mod:`repro.core.task_spec` / :mod:`repro.core.task_graph` — the dynamic
  task graph with data, control, and stateful edges.
* :mod:`repro.core.object_store` / :mod:`repro.core.transfer` — per-node
  immutable object stores with LRU eviction and inter-node replication.
* :mod:`repro.core.local_scheduler` / :mod:`repro.core.global_scheduler` —
  the bottom-up distributed scheduler.
* :mod:`repro.core.worker` / :mod:`repro.core.actor` — stateless task and
  stateful actor execution.
* :mod:`repro.core.reconstruction` — lineage-based fault tolerance.
"""

from repro.core.runtime import Node, Runtime, RuntimeConfig
from repro.core.task_spec import ArgRef, TaskSpec
from repro.core.task_graph import EdgeType, TaskGraph

__all__ = [
    "Node",
    "Runtime",
    "RuntimeConfig",
    "ArgRef",
    "TaskSpec",
    "EdgeType",
    "TaskGraph",
]
