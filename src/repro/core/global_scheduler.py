"""Global scheduler: candidate filtering + a pluggable placement policy.

Local schedulers forward tasks here when they cannot (or should not) run
them locally.  Per the paper (Section 4.2.2), the global scheduler:

1. identifies the nodes with enough resources *of the type requested*;
2. hands the candidates to a :class:`~repro.core.scheduling.SchedulerPolicy`
   through a read-only :class:`~repro.core.scheduling.ClusterView` — node
   backlogs and resource availability from heartbeats, object locations
   and sizes from the GCS (fetched once per decision, not per candidate),
   and the EWMA duration/bandwidth estimators;
3. the default ``lowest_wait`` policy picks the node with the lowest
   estimated waiting time — queued work (backlog × EWMA task duration)
   plus estimated input transfer time (remote input bytes ÷ EWMA
   bandwidth).

Multiple replicas can be instantiated, all sharing state through the GCS;
the runtime round-robins forwarded tasks across them, each replica with
its own policy instance.

``locality_aware=False`` drops the transfer term of the default policy —
the Figure 8a ablation.  ``decision_delay`` injects artificial scheduling
latency — Figure 12b.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional

from repro.common.lockwatch import make_lock
from repro.common.errors import ResourceRequestError
from repro.common.metrics import MetricsRegistry, NULL_REGISTRY
from repro.core.scheduling import (
    ClusterView,
    DepInfo,
    LowestEstimatedWaitPolicy,
    RuntimeNodeView,
    TaskView,
    make_policy,
)
from repro.core.task_spec import TaskSpec

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.runtime import Node


class ExponentialAverage:
    """Simple exponential moving average (the paper's estimator)."""

    def __init__(self, initial: float, alpha: float = 0.2):
        self.value = initial
        self.alpha = alpha
        self._lock = make_lock("ExponentialAverage._lock")

    def update(self, sample: float) -> None:
        with self._lock:
            self.value = self.alpha * sample + (1 - self.alpha) * self.value

    def get(self) -> float:
        with self._lock:
            return self.value


class GlobalScheduler:
    """One (replicable) global scheduler instance driving one policy."""

    def __init__(
        self,
        gcs,
        get_nodes: Callable[[], List["Node"]],
        policy: Optional[Any] = None,
        locality_aware: bool = True,
        default_task_duration: float = 0.001,
        default_bandwidth: float = 2e9,
        decision_delay: float = 0.0,
        metrics: Optional[MetricsRegistry] = None,
        index: int = 0,
    ):
        self.gcs = gcs
        self._get_nodes = get_nodes
        self.locality_aware = locality_aware
        if policy is None:
            policy = LowestEstimatedWaitPolicy(locality_aware=locality_aware)
        else:
            policy = make_policy(policy)
        self.policy = policy
        self.avg_task_duration = ExponentialAverage(default_task_duration)
        self.avg_bandwidth = ExponentialAverage(default_bandwidth)
        self.decision_delay = decision_delay
        self.decisions = 0
        self._lock = make_lock("GlobalScheduler._lock")
        metrics = metrics or NULL_REGISTRY
        self._m_decisions = metrics.counter(
            "global_scheduler_decisions_total",
            "Placement decisions made",
            scheduler=str(index),
            policy=policy.name,
        )
        self._m_estimated_wait = metrics.histogram(
            "global_scheduler_estimated_wait_seconds",
            "Estimated waiting time of the chosen node at placement",
            scheduler=str(index),
            policy=policy.name,
        )
        self._m_placement = metrics.histogram(
            "scheduler_placement_seconds",
            "Wall time of one policy placement decision",
            scheduler=str(index),
            policy=policy.name,
        )

    # -- learning (heartbeat / completion reports) ------------------------------

    def report_task_duration(self, seconds: float) -> None:
        self.avg_task_duration.update(max(seconds, 1e-6))

    def report_transfer(self, num_bytes: int, seconds: float) -> None:
        if seconds > 0:
            self.avg_bandwidth.update(num_bytes / seconds)

    # -- the ClusterView (what a policy may observe) ----------------------------

    def cluster_view(self, spec: TaskSpec, candidates: List["Node"]) -> ClusterView:
        """Snapshot the decision inputs for ``spec`` over ``candidates``.

        Each dependency's GCS object entry is fetched exactly once and
        shared across every candidate (previously ``estimated_wait`` was
        O(nodes × deps) in GCS lookups per decision).
        """
        deps: Dict[Any, DepInfo] = {}
        for dep in spec.dependencies():
            if dep in deps:
                continue
            entry = self.gcs.get_object_entry(dep)
            if entry is None:
                continue  # not created yet; no transfer estimate possible
            deps[dep] = DepInfo(entry.size, frozenset(entry.locations))
        return ClusterView(
            nodes=[RuntimeNodeView(node, i) for i, node in enumerate(candidates)],
            deps=deps,
            avg_task_duration=self.avg_task_duration.get(),
            bandwidth=max(self.avg_bandwidth.get(), 1.0),
        )

    @staticmethod
    def task_view(spec: TaskSpec) -> TaskView:
        return TaskView(
            key=spec.task_id,
            name=spec.function_name,
            resources=spec.resources,
            deps_fn=spec.dependencies,
        )

    # -- placement -----------------------------------------------------------------

    def estimated_wait(self, node: "Node", spec: TaskSpec) -> float:
        """Estimated time before ``spec`` could start on ``node``
        (introspection hook; delegates to the active policy's score)."""
        view = self.cluster_view(spec, [node])
        return self.policy.score(self.task_view(spec), view.nodes[0], view)

    def schedule(self, spec: TaskSpec) -> "Node":
        """Filter candidates, then let the policy place ``spec``."""
        if self.decision_delay:
            time.sleep(self.decision_delay)
        candidates = [
            node
            for node in self._get_nodes()
            if node.alive and node.resources.can_ever_satisfy(spec.resources)
        ]
        if not candidates:
            raise ResourceRequestError(
                f"no node can satisfy resources {spec.resources} for "
                f"{spec.describe()}"
            )
        with self._lock:
            self.decisions += 1
        view = self.cluster_view(spec, candidates)
        start = time.perf_counter()
        placement = self.policy.place(self.task_view(spec), view)
        self._m_placement.observe(time.perf_counter() - start)
        self._m_decisions.inc()
        if placement.estimated_wait is not None:
            self._m_estimated_wait.observe(placement.estimated_wait)
        return placement.node.node
