"""Global scheduler: lowest-estimated-waiting-time placement.

Local schedulers forward tasks here when they cannot (or should not) run
them locally.  Per the paper (Section 4.2.2), the global scheduler:

1. identifies the nodes with enough resources *of the type requested*;
2. among those, picks the node with the lowest estimated waiting time —
   the node's queued work (queue size × EWMA of task duration) plus the
   estimated time to transfer the task's remote inputs (total remote input
   bytes ÷ EWMA of transfer bandwidth);
3. learns queue sizes and resource availability from heartbeats, and input
   locations and sizes from the GCS.

Multiple replicas can be instantiated, all sharing state through the GCS;
the runtime round-robins forwarded tasks across them.

``locality_aware=False`` drops term (2) — the Figure 8a ablation.
``decision_delay`` injects artificial scheduling latency — Figure 12b.
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from repro.common.lockwatch import make_lock
from repro.common.errors import ResourceRequestError
from repro.common.metrics import MetricsRegistry, NULL_REGISTRY
from repro.core.task_spec import TaskSpec

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.runtime import Node


class ExponentialAverage:
    """Simple exponential moving average (the paper's estimator)."""

    def __init__(self, initial: float, alpha: float = 0.2):
        self.value = initial
        self.alpha = alpha
        self._lock = make_lock("ExponentialAverage._lock")

    def update(self, sample: float) -> None:
        with self._lock:
            self.value = self.alpha * sample + (1 - self.alpha) * self.value

    def get(self) -> float:
        with self._lock:
            return self.value


class GlobalScheduler:
    """One (replicable) global scheduler instance."""

    def __init__(
        self,
        gcs,
        get_nodes: Callable[[], List["Node"]],
        locality_aware: bool = True,
        default_task_duration: float = 0.001,
        default_bandwidth: float = 2e9,
        decision_delay: float = 0.0,
        metrics: Optional[MetricsRegistry] = None,
        index: int = 0,
    ):
        self.gcs = gcs
        self._get_nodes = get_nodes
        self.locality_aware = locality_aware
        self.avg_task_duration = ExponentialAverage(default_task_duration)
        self.avg_bandwidth = ExponentialAverage(default_bandwidth)
        self.decision_delay = decision_delay
        self.decisions = 0
        self._tie_breaker = 0
        self._lock = make_lock("GlobalScheduler._lock")
        metrics = metrics or NULL_REGISTRY
        self._m_decisions = metrics.counter(
            "global_scheduler_decisions_total",
            "Placement decisions made",
            scheduler=str(index),
        )
        self._m_estimated_wait = metrics.histogram(
            "global_scheduler_estimated_wait_seconds",
            "Estimated waiting time of the chosen node at placement",
            scheduler=str(index),
        )

    # -- learning (heartbeat / completion reports) ------------------------------

    def report_task_duration(self, seconds: float) -> None:
        self.avg_task_duration.update(max(seconds, 1e-6))

    def report_transfer(self, num_bytes: int, seconds: float) -> None:
        if seconds > 0:
            self.avg_bandwidth.update(num_bytes / seconds)

    # -- placement -----------------------------------------------------------------

    def estimated_wait(self, node: "Node", spec: TaskSpec) -> float:
        """Estimated time before ``spec`` could start on ``node``."""
        queue_term = node.local_scheduler.backlog() * self.avg_task_duration.get()
        # Lifetime reservations (actors) do not show up in the backlog, so
        # a node whose resources are currently exhausted must score worse
        # than one with free capacity — otherwise actor creations pile
        # onto one node and starve while others sit idle.
        if not node.resources.can_acquire_now(spec.resources):
            queue_term += max(1.0, 10 * self.avg_task_duration.get())
        if not self.locality_aware:
            return queue_term
        remote_bytes = 0
        for dep in spec.dependencies():
            entry = self.gcs.get_object_entry(dep)
            if entry is None:
                continue  # not created yet; no transfer estimate possible
            if node.node_id not in entry.locations:
                remote_bytes += entry.size
        return queue_term + remote_bytes / max(self.avg_bandwidth.get(), 1.0)

    def schedule(self, spec: TaskSpec) -> "Node":
        """Pick the node with the lowest estimated waiting time."""
        if self.decision_delay:
            time.sleep(self.decision_delay)
        candidates = [
            node
            for node in self._get_nodes()
            if node.alive and node.resources.can_ever_satisfy(spec.resources)
        ]
        if not candidates:
            raise ResourceRequestError(
                f"no node can satisfy resources {spec.resources} for "
                f"{spec.describe()}"
            )
        with self._lock:
            self.decisions += 1
            offset = self._tie_breaker
            self._tie_breaker += 1
        scored = [
            (self.estimated_wait(node, spec), index, node)
            for index, node in enumerate(candidates)
        ]
        best_wait = min(score for score, _i, _n in scored)
        self._m_decisions.inc()
        self._m_estimated_wait.observe(best_wait)
        # Round-robin among near-ties so equal nodes share load.
        ties = [node for score, _i, node in scored if score <= best_wait + 1e-12]
        return ties[offset % len(ties)]
